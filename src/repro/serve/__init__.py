"""repro.serve -- async multi-tenant feature service with micro-batching.

The serving layer the paper's hybrid HPC-QC deployment implies: many
clients, one shared device session, cross-request micro-batching so
concurrent requests for the same template fuse into one stacked kernel
pass -- with per-request bit-equality to standalone
``generate_features`` calls preserved (see :mod:`repro.serve.engine`).

Public surface::

    from repro.serve import FeatureService, FeatureClient, ServeConfig

    service = FeatureService(ServeConfig(batch_window_ms=2.0, pool="thread"))
    service.register("mnist", strategy, rows=2)
    async with service:
        features = await service.submit("mnist", angles, tenant="team-a")
        print(service.metrics().to_dict())
"""

from repro.api.config import SERVE_POOLS, ServeConfig
from repro.serve.batcher import MicroBatcher, PendingRequest
from repro.serve.client import FeatureClient, LoadReport, run_load
from repro.serve.engine import (
    FlushRequest,
    RequestPlan,
    TemplateArtifacts,
    build_artifacts,
    execute_flush,
    plan_request,
    request_cost,
)
from repro.serve.fairness import (
    AdmissionController,
    BackpressureError,
    WeightedRoundRobin,
)
from repro.serve.metrics import (
    LATENCY_WINDOW,
    MetricsSnapshot,
    ServiceMetrics,
    TenantStats,
)
from repro.serve.result_cache import ResultCache, ResultCacheInfo, result_key
from repro.serve.service import FeatureService, Registration, ServiceClosedError

__all__ = [
    "ServeConfig",
    "SERVE_POOLS",
    "FeatureService",
    "Registration",
    "ServiceClosedError",
    "FeatureClient",
    "LoadReport",
    "run_load",
    "MicroBatcher",
    "PendingRequest",
    "AdmissionController",
    "BackpressureError",
    "WeightedRoundRobin",
    "ResultCache",
    "ResultCacheInfo",
    "result_key",
    "ServiceMetrics",
    "MetricsSnapshot",
    "TenantStats",
    "LATENCY_WINDOW",
    "RequestPlan",
    "FlushRequest",
    "TemplateArtifacts",
    "plan_request",
    "build_artifacts",
    "request_cost",
    "execute_flush",
]
