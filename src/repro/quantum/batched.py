"""Batched structure-shared execution: one compile, a whole sample batch.

The Q-matrix sweep (paper Algorithm 1) evaluates the *same* circuit template
``U(theta_j) S(x_i)`` on every data point -- only the encoding angles differ
per row.  The per-sample engines (naive walker, :class:`CompiledCircuit`)
must re-bind and re-compile that template for every sample because binding
bakes the angles into the gate matrices.  This module keeps the template
*unbound*: fixed and bound gates fuse into shared dense blocks exactly as in
:mod:`repro.quantum.compile`, while parameterised single-qubit rotations stay
as *angle slots*, and :meth:`ParametricCompiledCircuit.apply_batch` evolves
an entire chunk of samples in one stacked pass --

* each shared :class:`~repro.quantum.compile.FusedBlock` is one
  ``(2^k, 2^k) x (B, 2^k, 2^(n-k))`` tensordot over the whole batch;
* each run of per-sample rotations on one qubit collapses into a single
  :class:`AngleChain`: the per-row 2x2 matrices are composed in ``(B, 2, 2)``
  space (a few tiny batched matmuls) and applied with one batched einsum,
  so ``rows`` encoder rotations cost one state-sized kernel pass instead of
  ``rows``.

VQNet's precompiled hybrid-network graphs and qibotf's gate-queue batching
(PAPERS.md) make the same bet: when structure is shared, amortise it across
the batch.  The per-sample engines remain the reference oracle -- the
property suite (``tests/quantum/test_batched.py``) pins ``apply_batch``
against sample-at-a-time bind+evolve to 1e-10 on random templates.

Segment reordering is support-disjoint only (two operations acting on
disjoint qubit sets commute), so the compiled program is exactly equivalent
to the source template.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.quantum.circuit import Circuit, Operation, Parameter
from repro.quantum.compile import (
    DEFAULT_FUSION_WIDTH,
    CompileCache,
    FusedBlock,
    _block_unitary,
    resolve_fusion_width,
)
from repro.quantum.gates import (
    gate_matrix,
    phase_batch,
    rotation_batch_xp,
    rx_batch,
    ry_batch,
    rz_batch,
)
from repro.quantum.transpile import fuse_blocks

__all__ = [
    "BATCHED_ROTATIONS",
    "AngleChain",
    "ParametricCompiledCircuit",
    "compile_parametric",
    "clear_parametric_cache",
    "extend_template",
    "resolve_vectorize",
    "template_fingerprint",
]


def resolve_vectorize(knob: str | None) -> str:
    """Canonicalize the user-facing ``vectorize`` knob.

    ``"auto"`` -> batched structure-shared execution wherever the backend
    supports it; ``"off"``/``None`` -> the per-sample reference path.
    """
    if knob is None or knob == "off":
        return "off"
    if knob == "auto":
        return "auto"
    raise ValueError(f'vectorize must be "auto" or "off", got {knob!r}')


#: Single-qubit rotations that may stay parametric in a batched template:
#: gate name -> vectorised ``(batch, 2, 2)`` matrix builder (the shared
#: implementations in :mod:`repro.quantum.gates`).  Unbound multi-qubit
#: rotations must be bound before compilation -- the sweep only ever keeps
#: *encoding* rotations symbolic, which are single-qubit by construction
#: (Fig. 7).
BATCHED_ROTATIONS = {
    "rx": rx_batch,
    "ry": ry_batch,
    "rz": rz_batch,
    "phase": phase_batch,
}

#: Chain factor tag for a bound single-qubit gate folded into an AngleChain.
_FIXED = "fixed"


@dataclass(frozen=True)
class AngleChain:
    """A run of single-qubit gates on one wire with per-sample angles.

    ``factors`` are ``(kind, payload)`` pairs in application order:
    ``(rotation_name, slot_index)`` for a parametric factor or
    ``("fixed", matrix)`` for a bound gate riding along in the chain.  The
    whole chain composes into one per-sample 2x2 -- composition happens in
    ``(batch, 2, 2)`` space, costing ~8 flops per sample per factor versus
    a full ``batch * 2^n`` state pass per gate.
    """

    qubit: int
    factors: tuple[tuple[str, object], ...]

    @property
    def num_factors(self) -> int:
        return len(self.factors)

    @property
    def slots(self) -> tuple[int, ...]:
        """Angle-slot indices this chain reads, in application order."""
        return tuple(p for kind, p in self.factors if kind != _FIXED)

    def matrices(self, angles: np.ndarray, *, xp=None) -> np.ndarray:
        """The composed per-sample matrix stack, shape ``(batch, 2, 2)``.

        With a non-native ``xp`` namespace, ``angles`` may already be a
        device tensor and the composition runs on that device.
        """
        if xp is None or xp.native:
            out: np.ndarray | None = None
            for kind, payload in self.factors:
                m = (
                    payload
                    if kind == _FIXED
                    else BATCHED_ROTATIONS[kind](angles[:, payload])
                )
                # (2,2) @ (B,2,2) and (B,2,2) @ (B,2,2) both broadcast; factors
                # apply left-to-right, so later factors multiply from the left.
                out = m if out is None else np.matmul(m, out)
            if out.ndim == 2:  # defensive: an all-fixed chain (never built today)
                out = np.broadcast_to(out, (angles.shape[0], 2, 2))
            return out
        out = None
        for kind, payload in self.factors:
            m = (
                xp.to_device_cached(payload)
                if kind == _FIXED
                else rotation_batch_xp(kind, angles[:, payload], xp)
            )
            out = m if out is None else xp.matmul(m, out)
        return out


@dataclass(frozen=True)
class ParametricCompiledCircuit:
    """A fused program with open angle slots, executable per sample batch.

    ``segments`` interleave shared :class:`FusedBlock` unitaries with
    per-sample :class:`AngleChain` rotations in program order.  Instances
    contain only tuples and NumPy arrays, so -- like
    :class:`~repro.quantum.compile.CompiledCircuit` -- one parent-side
    compilation pickles to every process-pool worker.
    """

    num_qubits: int
    num_slots: int
    segments: tuple[FusedBlock | AngleChain, ...]
    fusion_width: int
    source_gates: int
    name: str = "parametric"

    #: Dispatch marker: this program consumes raw angle chunks via
    #: ``evolve_batch`` rather than prepared states via ``evolve`` (shared
    #: with the batched density programs, replacing isinstance dispatch).
    consumes_angles = True

    @property
    def num_segments(self) -> int:
        return len(self.segments)

    @property
    def num_blocks(self) -> int:
        return sum(1 for s in self.segments if isinstance(s, FusedBlock))

    @property
    def num_chains(self) -> int:
        return sum(1 for s in self.segments if isinstance(s, AngleChain))

    def apply_batch(
        self, angles: np.ndarray, states: np.ndarray | None = None, *, xp=None
    ) -> np.ndarray:
        """Evolve a whole batch, one row of ``angles`` per sample.

        ``angles`` is ``(batch, num_slots)`` (a trailing multi-axis layout
        like the encoder's ``(batch, rows, cols)`` is flattened C-order,
        matching first-use parameter registration order).  ``states``
        defaults to a |0...0> batch; when given it must be
        ``(batch, 2**n)``.  Returns ``(batch, 2**n)`` evolved states.

        ``xp`` selects the array namespace (:mod:`repro.xp`): ``None`` or
        native NumPy keeps this body bit-identical to the reference; any
        other namespace moves the angle chunk to its device once, runs the
        same segment walk there, and returns NumPy.
        """
        angles = np.asarray(angles, dtype=float)
        if angles.ndim > 2:
            angles = angles.reshape(angles.shape[0], -1)
        if angles.ndim != 2 or angles.shape[1] != self.num_slots:
            raise ValueError(
                f"angles shape {angles.shape} incompatible with "
                f"{self.num_slots} angle slots"
            )
        b = angles.shape[0]
        dim = 2**self.num_qubits
        if xp is not None and not xp.native:
            return self._apply_batch_xp(angles, states, xp, b, dim)
        if states is None:
            tensor = np.zeros((b,) + (2,) * self.num_qubits, dtype=np.complex128)
            tensor[(slice(None),) + (0,) * self.num_qubits] = 1.0
        else:
            states = np.asarray(states, dtype=np.complex128)
            if states.shape != (b, dim):
                raise ValueError(
                    f"states shape {states.shape} != expected {(b, dim)}"
                )
            tensor = states.reshape((b,) + (2,) * self.num_qubits)
        # The batch stays in (B, 2, ..., 2) tensor form across all segments;
        # one contiguity copy at the very end (same discipline as
        # CompiledCircuit.apply).
        for seg in self.segments:
            if isinstance(seg, AngleChain):
                axis = 1 + seg.qubit
                moved = np.moveaxis(tensor, axis, 1)
                shape = moved.shape
                flat = moved.reshape(b, 2, -1)
                flat = np.einsum("bij,bjr->bir", seg.matrices(angles), flat)
                tensor = np.moveaxis(flat.reshape(shape), 1, axis)
            else:
                k = seg.width
                gate = seg.matrix.reshape((2,) * (2 * k))
                axes = [1 + q for q in seg.qubits]
                tensor = np.tensordot(gate, tensor, axes=(list(range(k, 2 * k)), axes))
                tensor = np.moveaxis(tensor, range(k), axes)
        return np.ascontiguousarray(tensor.reshape(b, dim))

    def _apply_batch_xp(self, angles, states, xp, b, dim):
        """Generic device body of :meth:`apply_batch` (validated inputs)."""
        a_dev = xp.to_device(angles)
        if states is None:
            tensor = xp.zeros((b,) + (2,) * self.num_qubits)
            tensor[(slice(None),) + (0,) * self.num_qubits] = 1.0
        else:
            states = xp.ascomplex(states)
            if tuple(int(s) for s in states.shape) != (b, dim):
                raise ValueError(
                    f"states shape {tuple(states.shape)} != expected {(b, dim)}"
                )
            tensor = states.reshape((b,) + (2,) * self.num_qubits)
        for seg in self.segments:
            if isinstance(seg, AngleChain):
                axis = 1 + seg.qubit
                moved = xp.moveaxis(tensor, axis, 1)
                shape = tuple(moved.shape)
                flat = moved.reshape(b, 2, -1)
                flat = xp.einsum(
                    "bij,bjr->bir", seg.matrices(a_dev, xp=xp), flat
                )
                tensor = xp.moveaxis(flat.reshape(shape), 1, axis)
            else:
                k = seg.width
                gate = xp.to_device_cached(seg.matrix).reshape((2,) * (2 * k))
                axes = [1 + q for q in seg.qubits]
                tensor = xp.tensordot(
                    gate, tensor, axes=(list(range(k, 2 * k)), axes)
                )
                tensor = xp.moveaxis(tensor, tuple(range(k)), tuple(axes))
        return xp.to_numpy(xp.ascontiguous(tensor.reshape(b, dim)))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ParametricCompiledCircuit({self.name!r}, qubits={self.num_qubits}, "
            f"slots={self.num_slots}, blocks={self.num_blocks} + "
            f"chains={self.num_chains} from {self.source_gates} gates, "
            f"k={self.fusion_width})"
        )


class _RunBuilder:
    """Mutable builder for a run of bound operations awaiting fusion."""

    __slots__ = ("support", "ops")

    def __init__(self, op: Operation):
        self.support = set(op.qubits)
        self.ops = [op]

    def add(self, op: Operation) -> None:
        self.support |= set(op.qubits)
        self.ops.append(op)

    def touches(self, qubits: tuple[int, ...]) -> bool:
        return bool(self.support & set(qubits))


class _ChainBuilder:
    """Mutable builder for an :class:`AngleChain`."""

    __slots__ = ("qubit", "factors")

    def __init__(self, qubit: int):
        self.qubit = qubit
        self.factors: list[tuple[str, object]] = []

    def touches(self, qubits: tuple[int, ...]) -> bool:
        return self.qubit in qubits


def template_fingerprint(circuit: Circuit) -> tuple:
    """Hashable identity of a circuit *template* (slots stay symbolic).

    The unbound counterpart of :meth:`Circuit.fingerprint`: bound angles
    enter as floats, parameter slots as ``("slot", index)`` markers -- two
    templates share a fingerprint iff they compile identically under
    :func:`compile_parametric`, so this is the parametric-cache key.
    """
    return (circuit.num_qubits, circuit.num_parameters) + tuple(
        (
            op.gate,
            op.qubits,
            ("slot", op.param.index)
            if isinstance(op.param, Parameter)
            else (None if op.param is None else float(op.param)),
        )
        for op in circuit.operations
    )


#: Process-wide cache for batched templates (the Q-matrix sweep recompiles
#: the same encoder/Ansatz templates on every fit/predict call otherwise).
#: Sized like the bound-circuit cache: the paper's largest shift ensemble
#: (8 qubits, R=2) holds 129 instances, which must fit with headroom or the
#: LRU would evict the whole working set once per sweep.
GLOBAL_PARAMETRIC_CACHE = CompileCache(maxsize=256)


def clear_parametric_cache() -> None:
    """Drop every entry of the process-wide parametric compile cache."""
    GLOBAL_PARAMETRIC_CACHE.clear()


def compile_parametric(
    circuit: Circuit,
    max_width: int | str = DEFAULT_FUSION_WIDTH,
    cache: CompileCache | None = GLOBAL_PARAMETRIC_CACHE,
    array_backend: str = "numpy",
) -> ParametricCompiledCircuit:
    """Compile a (possibly unbound) template into a batched program.

    Bound operations fuse into dense :class:`FusedBlock` unitaries of
    support ``<= max_width`` exactly as :func:`compile_circuit`; unbound
    single-qubit rotations become :class:`AngleChain` slots.  Consecutive
    single-qubit gates on the same wire -- parametric or bound -- merge into
    one chain, so e.g. the Fig. 7 encoder's ``rows`` alternating RZ/RX
    rotations per qubit collapse into a single per-sample 2x2.

    All reordering during segment construction swaps support-disjoint
    operations only, so the program is exactly equivalent to the source.
    Unbound rotations outside :data:`BATCHED_ROTATIONS` (controlled
    rotations) raise -- bind them first.  Compiled templates are cached
    under their :func:`template_fingerprint` plus ``array_backend`` (the
    namespace the program will execute under; artifacts stay host NumPy
    but entries never cross namespaces).  Pass ``cache=None`` to force a
    fresh compilation.
    """
    width = resolve_fusion_width(max_width)
    if width is None:
        raise ValueError(
            'compile_parametric called with compilation disabled ("off")'
        )
    if cache is not None:
        key = ("parametric", width, array_backend) + template_fingerprint(circuit)
        return cache.get_by_key(
            key, lambda: compile_parametric(circuit, width, cache=None)
        )
    segments: list[_RunBuilder | _ChainBuilder] = []
    for op in circuit.operations:
        if isinstance(op.param, Parameter):
            if op.gate not in BATCHED_ROTATIONS:
                raise ValueError(
                    f"cannot keep {op.gate!r} parametric in a batched template: "
                    f"only single-qubit rotations {sorted(BATCHED_ROTATIONS)} "
                    f"may stay unbound"
                )
            chain: _ChainBuilder | None = None
            for seg in reversed(segments):
                if seg.touches(op.qubits):
                    if isinstance(seg, _ChainBuilder) and seg.qubit == op.qubits[0]:
                        chain = seg
                    break
            if chain is None:
                chain = _ChainBuilder(op.qubits[0])
                segments.append(chain)
            chain.factors.append((op.gate, op.param.index))
        else:
            # Scan back past support-disjoint segments: merge into the first
            # segment that touches this op (a run absorbs it; a chain on the
            # same single wire folds it in as a fixed factor).  If the
            # touching segment cannot absorb it -- or nothing touches --
            # any run *after* the blocker is support-disjoint from the op
            # and can host it; otherwise open a fresh run at the end.
            target: _RunBuilder | _ChainBuilder | None = None
            fallback: _RunBuilder | None = None
            for seg in reversed(segments):
                if seg.touches(op.qubits):
                    if isinstance(seg, _RunBuilder):
                        target = seg
                    elif len(op.qubits) == 1:
                        target = seg
                    break
                if fallback is None and isinstance(seg, _RunBuilder):
                    fallback = seg
            if isinstance(target, _RunBuilder):
                target.add(op)
            elif isinstance(target, _ChainBuilder):
                target.factors.append((_FIXED, gate_matrix(op.gate, op.param)))
            elif fallback is not None:
                fallback.add(op)
            else:
                segments.append(_RunBuilder(op))

    final: list[FusedBlock | AngleChain] = []
    for seg in segments:
        if isinstance(seg, _ChainBuilder):
            final.append(AngleChain(seg.qubit, tuple(seg.factors)))
        else:
            sub = Circuit(circuit.num_qubits, name="run")
            sub.operations = seg.ops
            final.extend(
                FusedBlock(support, _block_unitary(support, ops), len(ops))
                for support, ops in fuse_blocks(sub, width)
            )
    return ParametricCompiledCircuit(
        num_qubits=circuit.num_qubits,
        num_slots=circuit.num_parameters,
        segments=tuple(final),
        fusion_width=width,
        source_gates=circuit.num_gates,
        name=f"{circuit.name}[batched,k={width}]",
    )


def extend_template(template: Circuit, bound: Circuit | None) -> Circuit:
    """The template followed by a *bound* circuit (the sweep's ``S . U``).

    :meth:`Circuit.compose` requires both sides bound (merging parameter
    tables is never needed); the batched sweep needs exactly one asymmetric
    case -- unbound encoder template + bound Ansatz instance -- which is
    safe because the bound suffix adds no parameters.
    """
    if bound is None:
        return template
    if bound.num_qubits != template.num_qubits:
        raise ValueError("qubit count mismatch in extend_template")
    if not bound.is_bound:
        raise ValueError("extend_template suffix must be bound; call .bind() first")
    out = template.copy()
    out.operations = list(template.operations) + list(bound.operations)
    out.name = f"{template.name}+{bound.name}"
    return out
