"""CLI surface: ``repro serve`` load test and ``repro lint --serve``."""

from __future__ import annotations

import json

import pytest

from repro.cli import main


def test_serve_command_emits_load_and_metrics(capsys):
    code = main([
        "serve",
        "--requests", "16",
        "--concurrency", "8",
        "--samples", "1",
        "--templates", "2",
        "--tenants", "2",
        "--qubits", "2",
        "--window-ms", "10",
        "--pool", "serial",
    ])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["load"]["completed"] == 16
    assert payload["load"]["rejected"] == 0
    assert payload["metrics"]["coalesce_ratio"] >= 1.0
    assert set(payload["metrics"]["tenants"]) == {"tenant-0", "tenant-1"}


def test_serve_listen_drives_load_over_tcp(capsys):
    code = main([
        "serve",
        "--listen",  # bare form: 127.0.0.1 with an OS-picked port
        "--requests", "16",
        "--concurrency", "8",
        "--samples", "1",
        "--templates", "2",
        "--tenants", "2",
        "--qubits", "2",
        "--window-ms", "10",
        "--pool", "serial",
    ])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["load"]["completed"] == 16
    assert payload["load"]["rejected"] == 0
    # Coalescing survives the socket hop.
    assert payload["metrics"]["coalesce_ratio"] > 1.0
    assert payload["transport"]["host"] == "127.0.0.1"
    assert payload["transport"]["port"] > 0


def test_serve_listen_rejects_malformed_address():
    with pytest.raises(SystemExit):
        main(["serve", "--listen", "no-port-here"])
    with pytest.raises(SystemExit):
        main(["serve", "--listen", "127.0.0.1:notaport"])


def test_lint_serve_flags_finds_transport_codes(capsys):
    code = main([
        "lint", "--serve", "--json",
        "--window-ms", "50",
        "--request-timeout", "0.01",
        "--max-frame-bytes", "8",
        "--no-stream", "--stream-threshold", "4",
    ])
    out = capsys.readouterr().out
    assert code == 1  # RPA115 is an error
    codes = {d["code"] for d in json.loads(out)}
    assert {"RPA114", "RPA115", "RPA116"} <= codes


def test_lint_serve_flags_finds_rpa11x(capsys):
    code = main([
        "lint", "--serve", "--json", "--window-ms", "0",
        "--tenant-weight", "free=0",
    ])
    out = capsys.readouterr().out
    assert code == 1  # RPA112 is an error
    codes = {d["code"] for d in json.loads(out)}
    assert {"RPA110", "RPA112"} <= codes


def test_lint_without_serve_ignores_serve_flags(capsys):
    code = main(["lint", "--window-ms", "0"])
    assert code == 0
    assert "RPA110" not in capsys.readouterr().out


def test_serve_rejects_bad_tenant_weight():
    with pytest.raises(SystemExit):
        main(["serve", "--tenant-weight", "nonsense"])
