"""repro.serve -- async multi-tenant feature service with micro-batching.

The serving layer the paper's hybrid HPC-QC deployment implies: many
clients, one shared device session, cross-request micro-batching so
concurrent requests for the same template fuse into one stacked kernel
pass -- with per-request bit-equality to standalone
``generate_features`` calls preserved (see :mod:`repro.serve.engine`).

Public surface::

    from repro.serve import FeatureService, FeatureClient, ServeConfig

    service = FeatureService(ServeConfig(batch_window_ms=2.0, pool="thread"))
    service.register("mnist", strategy, rows=2)
    async with service:
        features = await service.submit("mnist", angles, tenant="team-a")
        print(service.metrics().to_dict())

and over the network (same bits, different wire -- see
:mod:`repro.serve.transport` / :mod:`repro.serve.protocol`)::

    async with service, FeatureServer(service) as server:
        host, port = server.address
        async with await TcpTransport.connect(host, port) as transport:
            client = FeatureClient(transport=transport, tenant="team-a")
            features = await client.features("mnist", angles)
"""

from repro.api.config import (
    SERVE_POOLS,
    TRANSPORT_CONFIG_FIELDS,
    ServeConfig,
    TransportConfig,
)
from repro.serve.batcher import MicroBatcher, PendingRequest
from repro.serve.client import (
    FeatureClient,
    InProcessTransport,
    LoadReport,
    Transport,
    run_load,
)
from repro.serve.engine import (
    FlushRequest,
    RequestPlan,
    TemplateArtifacts,
    build_artifacts,
    execute_flush,
    plan_request,
    request_cost,
)
from repro.serve.fairness import (
    AdmissionController,
    BackpressureError,
    WeightedRoundRobin,
)
from repro.serve.metrics import (
    LATENCY_WINDOW,
    MetricsSnapshot,
    ServiceMetrics,
    TenantStats,
)
from repro.serve.protocol import (
    DEFAULT_MAX_FRAME_BYTES,
    ERROR_CODES,
    FRAME_MAGIC,
    FRAME_OVERHEAD,
    PROTOCOL_VERSION,
    ProtocolError,
    decode_array,
    encode_array,
    pack_frame,
    read_frame,
)
from repro.serve.result_cache import ResultCache, ResultCacheInfo, result_key
from repro.serve.service import (
    FeatureService,
    Registration,
    RequestTimeoutError,
    ServiceClosedError,
)
from repro.serve.transport import FeatureServer, TcpTransport

__all__ = [
    "ServeConfig",
    "SERVE_POOLS",
    "TransportConfig",
    "TRANSPORT_CONFIG_FIELDS",
    "FeatureService",
    "Registration",
    "ServiceClosedError",
    "RequestTimeoutError",
    "FeatureClient",
    "Transport",
    "InProcessTransport",
    "TcpTransport",
    "FeatureServer",
    "LoadReport",
    "run_load",
    "PROTOCOL_VERSION",
    "FRAME_MAGIC",
    "FRAME_OVERHEAD",
    "DEFAULT_MAX_FRAME_BYTES",
    "ERROR_CODES",
    "ProtocolError",
    "pack_frame",
    "read_frame",
    "encode_array",
    "decode_array",
    "MicroBatcher",
    "PendingRequest",
    "AdmissionController",
    "BackpressureError",
    "WeightedRoundRobin",
    "ResultCache",
    "ResultCacheInfo",
    "result_key",
    "ServiceMetrics",
    "MetricsSnapshot",
    "TenantStats",
    "LATENCY_WINDOW",
    "RequestPlan",
    "FlushRequest",
    "TemplateArtifacts",
    "plan_request",
    "build_artifacts",
    "request_cost",
    "execute_flush",
]
