"""Deterministic synthetic Fashion-MNIST substitute.

The paper trains on Fashion-MNIST (Xiao et al. [67]); this environment has
no network access, so we generate a drop-in replacement: 28x28 grayscale
images in the ten Fashion-MNIST classes, built from procedural garment
prototypes with *per-sample geometry jitter* (sleeve length, torso width,
translation), texture modulation, speckle and additive noise.  See DESIGN.md
"Substitutions".

Why this preserves the Table III/IV experiments:

* Class overlap comes primarily from geometry (coat sleeves 12-16 px, shirt
  sleeves 8-12 px; overlapping torso widths), the same regime as real
  garment photos -- not from blanket additive noise, which max pooling
  (paper Sec. VII.A) would saturate into uninformative features.
* The coat/shirt pair additionally carries a *correlation-coded texture*
  channel (left/right sleeve intensities move together for coats, oppositely
  for shirts, with a mean-zero per-sample latent).  Linear models on pooled
  pixels cannot exploit it; cross-column product features -- exactly what
  2-local Pauli expectations of the column-per-qubit encoding provide -- can.
  This reproduces the paper's headline ordering: logistic < 2/3-local
  post-variational in train accuracy.

All sampling is driven by a single seed; identical seeds give identical
datasets (NumPy Generator guarantees).
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

from repro.utils.rng import as_rng

__all__ = ["CLASS_NAMES", "class_prototype", "sample_class", "generate_dataset"]

#: Fashion-MNIST class order (index = label).
CLASS_NAMES = (
    "tshirt",
    "trouser",
    "pullover",
    "dress",
    "coat",
    "sandal",
    "shirt",
    "sneaker",
    "bag",
    "ankle_boot",
)

_SIZE = 28

#: Per-class left/right "texture correlation": coat sleeves brighten or dim
#: *together*, shirt sleeves *oppositely* (see module docstring).
_LR_CORRELATION = {CLASS_NAMES.index("coat"): +1.0, CLASS_NAMES.index("shirt"): -1.0}


def _canvas() -> np.ndarray:
    return np.zeros((_SIZE, _SIZE))


def _torso(img: np.ndarray, top: int, bottom: int, half_width: int, taper: float) -> None:
    """Draw a vertically tapered torso block centred horizontally."""
    centre = _SIZE // 2
    for r in range(top, bottom):
        frac = (r - top) / max(bottom - top - 1, 1)
        w = max(1, int(round(half_width * (1.0 - taper * frac))))
        img[r, centre - w : centre + w] = 1.0


def _sleeves(img: np.ndarray, top: int, length: int, drop: int, width: int) -> None:
    """Draw diagonal sleeves from the shoulders."""
    centre = _SIZE // 2
    for i in range(length):
        r = top + drop + i
        if r >= _SIZE:
            break
        for w in range(width):
            left = centre - 8 - i // 2 - w
            right = centre + 7 + i // 2 + w
            if 0 <= left < _SIZE:
                img[r, left] = 1.0
            if 0 <= right < _SIZE:
                img[r, right] = 1.0


def class_prototype(
    label: int, rng: np.random.Generator | None = None
) -> np.ndarray:
    """28x28 prototype of class ``label`` in [0, 1].

    With ``rng`` given, key dimensions are jittered per call (sleeve length,
    torso width, heel height, ...) inside ranges that *overlap between
    similar classes* -- coat (sleeves 12-16) vs shirt (sleeves 8-12) share
    the 12-boundary, the honest source of class confusion.
    """
    if not 0 <= label < len(CLASS_NAMES):
        raise ValueError(f"label {label} out of range")

    def jit(lo: int, hi: int, default: int) -> int:
        if rng is None:
            return default
        return int(rng.integers(lo, hi + 1))

    img = _canvas()
    name = CLASS_NAMES[label]
    centre = _SIZE // 2
    if name == "tshirt":
        _torso(img, 6, 22, jit(5, 7, 6), 0.1)
        _sleeves(img, 6, jit(3, 5, 4), 0, 2)
    elif name == "trouser":
        gap = jit(1, 2, 1)
        leg = jit(3, 5, 4)
        for r in range(4, 25):
            img[r, centre - gap - leg : centre - gap] = 1.0
            img[r, centre + gap : centre + gap + leg] = 1.0
        img[4:7, centre - gap - leg : centre + gap + leg] = 1.0
    elif name == "pullover":
        _torso(img, 5, 23, jit(6, 8, 7), 0.05)
        _sleeves(img, 5, jit(10, 14, 12), 0, 2)
    elif name == "dress":
        _torso(img, 4, 25, jit(3, 5, 4), -0.8)
    elif name == "coat":
        _torso(img, 4, 24, jit(5, 8, 7), 0.0)
        _sleeves(img, 4, jit(11, 16, 14), 1, 2)
        img[4:6, centre - 2 : centre + 2] = 0.0  # collar notch
    elif name == "sandal":
        for r in range(16, 20):
            img[r, 4:24] = 1.0
        for c in range(6, 24, 4):
            img[12:16, c : c + 2] = 1.0
    elif name == "shirt":
        _torso(img, 4, 24, jit(5, 8, 6), 0.08)
        _sleeves(img, 4, jit(8, 13, 10), 1, 2)
        img[4:7, centre - 1 : centre + 1] = 0.0  # button placket
        img[8:20, centre] = 0.6
    elif name == "sneaker":
        h = jit(13, 15, 14)
        for r in range(h, 20):
            img[r, 3:25] = 1.0
        img[h - 4 : h, 14:25] = 1.0
    elif name == "bag":
        img[10:24, 4:24] = 1.0
        for c in range(8, 20):
            r = 6 + abs(c - 14) // 2
            img[r:10, c] = np.maximum(img[r:10, c], 0.7)
    elif name == "ankle_boot":
        shaft = jit(7, 10, 8)
        img[shaft : shaft + 12, 14:24] = 1.0
        img[16:22, 4:24] = 1.0
    return np.clip(img, 0.0, 1.0)


def sample_class(
    label: int,
    num_samples: int,
    seed: int | np.random.Generator | None = None,
    noise: float = 0.08,
    max_shift: int = 3,
    texture: float = 0.5,
    speckle: float = 0.25,
    texture_flip: float = 0.2,
) -> np.ndarray:
    """Draw ``num_samples`` randomised instances of class ``label``.

    Per sample: geometry-jittered prototype -> integer translation ->
    left/right texture modulation (coat/shirt only, see ``_LR_CORRELATION``)
    -> Gaussian smoothing -> multiplicative speckle -> global intensity
    jitter -> additive pixel noise -> clip to [0, 1].

    ``noise`` is the *additive* sigma (kept small: max pooling would
    otherwise saturate on background noise); ``texture`` scales the
    correlation-coded nonlinear channel; ``speckle`` the per-pixel
    multiplicative fabric grain.  ``texture_flip`` is the probability that a
    sample's texture correlation is *inverted* -- channel label noise that
    caps the Bayes accuracy of the texture cue (real fabric cues are
    imperfect; this keeps every model in the paper's 0.6-0.85 accuracy
    band instead of letting a flexible classifier solve the task exactly).
    """
    rng = as_rng(seed)
    corr = _LR_CORRELATION.get(label, 0.0)
    out = np.empty((num_samples, _SIZE, _SIZE))
    third = _SIZE // 3
    for i in range(num_samples):
        img = class_prototype(label, rng) * 0.85
        dy, dx = rng.integers(-max_shift, max_shift + 1, size=2)
        img = ndimage.shift(img, (dy, dx), order=0, mode="constant")
        if corr != 0.0 and texture > 0.0:
            latent = rng.choice([-1.0, 1.0])
            effective = corr if rng.random() >= texture_flip else -corr
            img[:, :third] *= 1.0 + texture * latent
            img[:, -third:] *= 1.0 + texture * latent * effective
        img = ndimage.gaussian_filter(img, sigma=rng.uniform(0.5, 1.2))
        if speckle > 0.0:
            img = img * rng.uniform(1.0 - speckle, 1.0 + speckle, size=img.shape)
        img = img * rng.uniform(0.8, 1.0)
        img = img + rng.normal(0.0, noise, size=img.shape)
        out[i] = np.clip(img, 0.0, 1.0)
    return out


def generate_dataset(
    labels: list[int] | tuple[int, ...],
    per_class: int,
    seed: int | np.random.Generator | None = 0,
    noise: float = 0.08,
    texture: float = 0.5,
    relabel: bool = True,
) -> tuple[np.ndarray, np.ndarray]:
    """Balanced dataset over ``labels``; returns (images, y), shuffled.

    ``relabel=True`` maps the class list to 0..len(labels)-1 (binary tasks
    expect 0/1 labels); ``False`` keeps original Fashion-MNIST indices.
    """
    rng = as_rng(seed)
    images = []
    ys = []
    for new_label, label in enumerate(labels):
        imgs = sample_class(label, per_class, rng, noise=noise, texture=texture)
        images.append(imgs)
        ys.append(np.full(per_class, new_label if relabel else label, dtype=int))
    x = np.concatenate(images)
    y = np.concatenate(ys)
    order = rng.permutation(x.shape[0])
    return x[order], y[order]
