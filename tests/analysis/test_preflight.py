"""Preflight knob: the admission gate entry points run at job-build time.

The acceptance behaviour: ``preflight="error"`` rejects a
shards-exceeds-qubits job *before any dispatch*; ``"warn"`` surfaces the
same findings as warnings while leaving results bit-identical; ``"off"``
(the default) is free.
"""

import warnings

import numpy as np
import pytest

from repro.analysis.preflight import (
    PREFLIGHT_MODES,
    PreflightError,
    PreflightWarning,
    resolve_preflight,
    run_preflight,
)
from repro.api import ExecutionConfig, QuantumDevice
from repro.core.features import generate_features
from repro.core.strategies import ObservableConstruction

QUBITS = 2


@pytest.fixture(scope="module")
def strategy():
    return ObservableConstruction(qubits=QUBITS, locality=1)


@pytest.fixture(scope="module")
def angles():
    rng = np.random.default_rng(7)
    return rng.uniform(0, 2 * np.pi, size=(4, 2, QUBITS))


# --------------------------------------------------------------- knob
def test_resolve_preflight_modes():
    assert PREFLIGHT_MODES == ("off", "warn", "error")
    for mode in PREFLIGHT_MODES:
        assert resolve_preflight(mode) == mode
    assert resolve_preflight(None) == "off"
    with pytest.raises(ValueError, match="preflight"):
        resolve_preflight("strict")


def test_config_validates_and_serializes_preflight():
    assert ExecutionConfig().preflight == "off"
    assert ExecutionConfig(preflight=None).preflight == "off"
    with pytest.raises(ValueError, match="preflight"):
        ExecutionConfig(preflight="maybe")
    cfg = ExecutionConfig(preflight="warn")
    assert ExecutionConfig.from_dict(cfg.to_dict()).preflight == "warn"


# ------------------------------------------------------- run_preflight
def test_off_mode_short_circuits():
    # shards=32 >> 2^2 would be an error; "off" never analyzes.
    cfg = ExecutionConfig(shards=32, compile="auto")
    report = run_preflight(cfg, num_qubits=QUBITS)
    assert report.clean


def test_error_mode_raises_with_report():
    cfg = ExecutionConfig(shards=32, compile="auto", preflight="error")
    with pytest.raises(PreflightError) as excinfo:
        run_preflight(cfg, num_qubits=QUBITS, owner="unit")
    assert "RPA101" in excinfo.value.report.codes()
    assert "unit" in str(excinfo.value)


def test_warn_mode_warns_every_finding():
    cfg = ExecutionConfig(shards=32, preflight="warn")  # RPA101 + RPA107
    with pytest.warns(PreflightWarning) as caught:
        report = run_preflight(cfg, num_qubits=QUBITS)
    assert set(report.codes()) == {"RPA101", "RPA107"}
    assert len(caught) == len(report)


# ------------------------------------------ entry-point integration
def test_generate_features_error_mode_rejects_before_dispatch(strategy, angles):
    cfg = ExecutionConfig(shards=32, compile="auto", preflight="error")
    with pytest.raises(PreflightError) as excinfo:
        generate_features(strategy, angles, config=cfg)
    assert "RPA101" in excinfo.value.report.codes()


def test_warn_mode_is_result_neutral(strategy, angles):
    baseline = generate_features(strategy, angles, config=ExecutionConfig())
    with pytest.warns(PreflightWarning):
        noisy_cfg = ExecutionConfig(shards=2, compile="off", preflight="warn")
        warned = generate_features(strategy, angles, config=noisy_cfg.merged(
            shards=1, compile="off", chunk_size=2  # RPA104 fires, run unchanged
        ))
    np.testing.assert_array_equal(baseline, warned)


def test_default_config_emits_no_warnings(strategy, angles):
    with warnings.catch_warnings():
        warnings.simplefilter("error", PreflightWarning)
        generate_features(strategy, angles, config=ExecutionConfig(preflight="warn"))


# ------------------------------------------------------ inspectors
def test_device_check_never_raises(strategy):
    cfg = ExecutionConfig(shards=32, compile="auto", preflight="error")
    with QuantumDevice(cfg) as device:
        report = device.check(num_qubits=QUBITS)
    assert "RPA101" in report.codes()


def test_device_check_lints_program_under_plan(strategy):
    from repro.quantum.circuit import Circuit

    template = Circuit(QUBITS, name="t")
    template.append("crx", (0, 1), "theta_0")  # RPA003 under vectorize
    with QuantumDevice(ExecutionConfig(shards=2, compile="auto")) as device:
        report = device.check(template)
    assert "RPA003" in report.codes()
    assert "RPA004" in report.codes()


def test_config_diagnose_matches_lint_config():
    cfg = ExecutionConfig(shards=8, compile="auto")
    assert cfg.diagnose(num_qubits=2).codes() == ("RPA101",)
    assert cfg.diagnose().clean
