"""Flush execution: one stacked pass for a coalesced micro-batch.

The serving layer's correctness contract is *per-request bit-equality*:
every response must equal ``generate_features(strategy, x,
config=execution.merged(seed=request_seed))`` bit for bit, no matter which
requests happened to share its flush.  Two properties make that possible:

* the evolution kernels are **row-stable**: ``evolve_batch`` over a
  concatenated angle stack produces, for each row, the same bits as
  evolving that row in any other batch composition (einsum/matmul over
  axis 0 never mixes rows);
* the seed contract is **per request, not per batch**: each request
  carries its own job-grid plan (:class:`RequestPlan`) whose seeds are
  spawned exactly like a standalone sweep's
  (``spawn_rngs(seed, p * nchunks)``, ansatz-major job order), and
  measurement reuses :func:`repro.core.features.measure_block` verbatim.

So a flush concatenates the requests' angle batches, runs ONE
``evolve_batch`` per Ansatz program over the stack (this is the coalescing
payoff -- compile-cache hits plus one stacked kernel pass instead of N),
then splits the evolved rows back per request and measures each request's
chunks under its own RNG streams.

The fast path applies exactly when :func:`generate_features` itself would
run the single-batched-program path (``vectorize="auto"`` on a supporting
backend, and one Ansatz instance or a density-representation backend).
Any other configuration falls back to per-request ``generate_features``
inside the flush worker -- trivially bit-equal, still async and admitted,
just without cross-request sharing (RPA113 lints the window in that case).

Everything here is plain picklable data + a module-level function, so a
flush ships to thread *or process* pool workers unchanged.  Flush workers
never dispatch nested pool work (``generate_features`` runs with its
inline serial runtime): the flush itself is the pool's unit of
parallelism, and nesting could deadlock a saturated pool.
"""

from __future__ import annotations

import json
from collections.abc import Sequence
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.api.config import ExecutionConfig
from repro.core.features import (
    _bound_ansatz,
    _parametric_programs,
    _use_vectorized,
    feature_circuit_tasks,
    feature_jobs,
    generate_features,
    measure_block,
)
from repro.core.strategies import Strategy
from repro.data.encoding import encoding_template
from repro.hpc.cluster import task_costs
from repro.hpc.partition import chunk_ranges
from repro.quantum.batched import extend_template, template_fingerprint
from repro.quantum.circuit import Circuit
from repro.utils.rng import spawn_rngs
from repro.xp import get_namespace

__all__ = [
    "RequestPlan",
    "FlushRequest",
    "TemplateArtifacts",
    "plan_request",
    "build_artifacts",
    "request_cost",
    "execute_flush",
]


@dataclass(frozen=True)
class RequestPlan:
    """The job grid ONE request would have as a standalone sweep.

    ``chunks`` are the request's own chunk ranges and ``seeds`` its own
    per-job RNG seeds (ansatz-major order, ``None`` for exact estimation)
    -- derived from the *request* seed exactly like
    ``repro.core.features._sweep_stream`` derives them, which is what
    keeps stochastic responses independent of batch composition.
    """

    num_samples: int
    chunks: tuple[tuple[int, int], ...]
    seeds: tuple[int, ...] | None


def plan_request(
    num_ansatze: int,
    num_samples: int,
    cfg: ExecutionConfig,
    seed: int | None,
) -> RequestPlan:
    """Plan one request's chunks and seeds under ``cfg``."""
    chunks = tuple(chunk_ranges(num_samples, cfg.resolved_chunk_size))
    if cfg.estimator == "exact":
        seeds = None
    else:
        children = spawn_rngs(seed, num_ansatze * len(chunks))
        seeds = tuple(int(c.integers(0, 2**63)) for c in children)
    return RequestPlan(num_samples=num_samples, chunks=chunks, seeds=seeds)


@dataclass(frozen=True)
class FlushRequest:
    """One request's share of a flush: its angles, seed, and plan."""

    angles: np.ndarray
    seed: int | None
    plan: RequestPlan


@dataclass(frozen=True)
class TemplateArtifacts:
    """Sweep-wide artifacts for one registered template, built once.

    ``group_key`` is the coalescing identity: two registrations whose
    batched templates share fingerprints, observables and
    config-minus-seed coalesce into the same flushes (the per-request
    seed lives in each :class:`FlushRequest`, never in the key).
    """

    strategy: Strategy
    template: Circuit
    cfg: ExecutionConfig
    fast_path: bool
    programs: tuple
    observables: tuple
    group_key: tuple


def _config_key(cfg: ExecutionConfig) -> str:
    """Canonical config identity *minus the seed* (JSON, sorted keys)."""
    payload = cfg.to_dict()
    payload.pop("seed", None)
    return json.dumps(payload, sort_keys=True)


def build_artifacts(
    strategy: Strategy, rows: int, cfg: ExecutionConfig
) -> TemplateArtifacts:
    """Compile one registration's artifacts (programs via the global
    fingerprint-keyed parametric cache, so identical templates across
    registrations -- or service restarts in one process -- hit)."""
    template = encoding_template(rows, strategy.num_qubits)
    fast_path = _use_vectorized(cfg) and (
        strategy.num_ansatze == 1 or cfg.backend.representation == "density"
    )
    programs: tuple = ()
    if fast_path:
        programs = tuple(
            _parametric_programs(
                strategy, cfg.compile, template, cfg.backend, cfg.resolved_array_backend
            )
        )
    observables = tuple(strategy.observables())
    fingerprints = tuple(
        template_fingerprint(extend_template(template, _bound_ansatz(strategy, params)))
        for params in strategy.parameter_sets()
    )
    group_key = (
        fingerprints,
        tuple(repr(obs) for obs in observables),
        _config_key(cfg),
        fast_path,
    )
    return TemplateArtifacts(
        strategy=strategy,
        template=template,
        cfg=cfg,
        fast_path=fast_path,
        programs=programs,
        observables=observables,
        group_key=group_key,
    )


def request_cost(artifacts: TemplateArtifacts, num_samples: int) -> float:
    """Admission price of one request, in the scheduler's cost units.

    The same :class:`~repro.hpc.cluster.CircuitTask` model that orders the
    runtime's dispatch prices admission, summed over the request's job
    grid.  Fallback registrations are priced on the raw Ansatz (gate
    count instead of fused-segment count) -- admission needs cost ratios,
    not exact flops.
    """
    strategy = artifacts.strategy
    cfg = artifacts.cfg
    jobs = feature_jobs(strategy.num_ansatze, num_samples, cfg.resolved_chunk_size)
    programs: Sequence[Any]
    if artifacts.fast_path:
        programs = artifacts.programs
    else:
        circuit = strategy.ansatz
        if circuit is not None and circuit.num_gates == 0:
            circuit = None
        programs = [circuit] * strategy.num_ansatze
    tasks = feature_circuit_tasks(
        jobs,
        list(programs),
        strategy.num_qubits,
        strategy.num_observables,
        cfg.estimator,
        cfg.shots,
        cfg.snapshots,
        cfg.backend,
    )
    return float(task_costs(tasks).sum())


def execute_flush(
    artifacts: TemplateArtifacts, requests: Sequence[FlushRequest]
) -> list[np.ndarray]:
    """Run one coalesced flush; returns one ``(k_r, p*q)`` block per request.

    Fast path: concatenate every request's angles, ONE
    ``backend.evolve_batch`` per Ansatz program over the stack, then
    measure each request's chunk slices under its own plan seeds --
    bit-equal to standalone sweeps by kernel row-stability.  Fallback:
    per-request :func:`generate_features` under the request's seed (the
    inline serial runtime; see the module docstring on nesting).
    """
    cfg = artifacts.cfg
    if not artifacts.fast_path:
        return [
            np.asarray(
                generate_features(
                    artifacts.strategy,
                    request.angles,
                    config=cfg.merged(seed=request.seed, preflight="off"),
                )
            )
            for request in requests
        ]
    backend = cfg.backend
    name = cfg.resolved_array_backend
    xp = None if name == "numpy" else get_namespace(name)
    stacked = np.concatenate([request.angles for request in requests], axis=0)
    offsets = np.cumsum([0] + [request.plan.num_samples for request in requests])
    q = len(artifacts.observables)
    num_ansatze = len(artifacts.programs)
    observables = list(artifacts.observables)
    outputs = [
        np.empty((request.plan.num_samples, num_ansatze * q)) for request in requests
    ]
    for a, program in enumerate(artifacts.programs):
        evolve = backend.evolve_batch
        evolved = (
            evolve(stacked, program) if xp is None else evolve(stacked, program, xp=xp)
        )
        for request, offset, out in zip(requests, offsets[:-1], outputs, strict=True):
            nchunks = len(request.plan.chunks)
            for c, (lo, hi) in enumerate(request.plan.chunks):
                rng = (
                    None
                    if request.plan.seeds is None
                    else np.random.default_rng(request.plan.seeds[a * nchunks + c])
                )
                block = measure_block(
                    evolved[offset + lo : offset + hi],
                    observables,
                    cfg.estimator,
                    cfg.shots,
                    cfg.snapshots,
                    rng,
                    backend,
                )
                out[lo:hi, a * q : (a + 1) * q] = block
    return outputs
