"""Post-variational feature generation -- paper Algorithm 1.

Builds the Q matrix ``Q_ij = tr(O_j rho_theta(x_i))`` (Eq. 26): every data
point is encoded (Fig. 7), pushed through each fixed Ansatz instance of the
strategy, and measured against each observable.  Feature columns are ordered
Ansatz-major: column ``a * q + b`` holds (parameter set a, observable b),
matching Definition 1's (p, q) indexing.

Three estimators exercise the paper's three measurement models:

* ``exact``   -- analytic expectations (ideal simulator, Tables III/IV);
* ``shots``   -- finite-sample direct measurement (Proposition 1 regime);
* ``shadows`` -- classical-shadow estimation, one shadow batch per
  (data point, Ansatz) reused across all q observables (Proposition 2).

The work grid (Ansatz instance x data chunk) is embarrassingly parallel and
is dispatched through :class:`repro.hpc.executor.ParallelExecutor`; all
backends produce identical matrices for ``exact`` and seed-deterministic
matrices otherwise (child RNG streams are derived per task, independent of
schedule).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.strategies import Strategy
from repro.data.encoding import encode_batch
from repro.hpc.executor import ParallelExecutor
from repro.hpc.partition import chunk_ranges
from repro.quantum.circuit import Circuit
from repro.quantum.compile import CompiledCircuit, compile_circuit, resolve_fusion_width
from repro.quantum.observables import PauliString, expectation
from repro.quantum.sampling import measure_pauli_batch
from repro.quantum.shadows import collect_shadows, estimate_pauli
from repro.quantum.statevector import run_circuit
from repro.utils.rng import as_rng, spawn_rngs

__all__ = ["FeatureJob", "generate_features", "evaluate_features"]

ESTIMATORS = ("exact", "shots", "shadows")


@dataclass(frozen=True)
class FeatureJob:
    """One schedulable unit: Ansatz instance ``a`` on data rows [lo, hi)."""

    ansatz_index: int
    lo: int
    hi: int


def _bound_ansatz(strategy: Strategy, params: np.ndarray) -> Circuit | None:
    circuit = strategy.ansatz
    if circuit is None or circuit.num_parameters == 0:
        return None
    return circuit.bind(params)


def _ansatz_programs(
    strategy: Strategy, compile: str | int
) -> list[Circuit | CompiledCircuit | None]:
    """One executable program per Ansatz instance, prepared once per sweep.

    Binding (and, when ``compile`` is on, fusion) happens here -- up front
    and once per parameter set -- instead of once per (Ansatz, chunk) job,
    so the Q-matrix sweep reuses each artifact across every data chunk and,
    because :class:`CompiledCircuit` pickles, across process workers too.
    """
    width = resolve_fusion_width(compile)
    programs: list[Circuit | CompiledCircuit | None] = []
    for params in strategy.parameter_sets():
        bound = _bound_ansatz(strategy, params)
        if bound is not None and width is not None:
            bound = compile_circuit(bound, max_width=width)
        programs.append(bound)
    return programs


def _evolve(states: np.ndarray, program: Circuit | CompiledCircuit | None) -> np.ndarray:
    if program is None:
        return states
    if isinstance(program, CompiledCircuit):
        return program.apply(states)
    return run_circuit(program, state=states)


def _evaluate_block(
    states: np.ndarray,
    program: Circuit | CompiledCircuit | None,
    observables: list[PauliString],
    estimator: str,
    shots: int,
    snapshots: int,
    rng: np.random.Generator | None,
) -> np.ndarray:
    """Feature block for one Ansatz instance on a chunk of encoded states.

    Returns (chunk, q).  This is the module-level worker so the process
    executor backend can pickle it via functools.partial-free closures.
    """
    evolved = _evolve(states, program)
    q = len(observables)
    block = np.empty((evolved.shape[0], q))
    if estimator == "exact":
        for b, obs in enumerate(observables):
            block[:, b] = expectation(evolved, obs)
    elif estimator == "shots":
        for b, obs in enumerate(observables):
            block[:, b] = measure_pauli_batch(evolved, obs, shots, rng)
    elif estimator == "shadows":
        for i in range(evolved.shape[0]):
            shadow = collect_shadows(evolved[i], snapshots, rng)
            for b, obs in enumerate(observables):
                block[i, b] = estimate_pauli(shadow, obs)
    else:
        raise ValueError(f"unknown estimator {estimator!r}; choose from {ESTIMATORS}")
    return block


class _BlockWorker:
    """Picklable task callable for the process executor backend."""

    def __init__(
        self,
        strategy: Strategy,
        states: np.ndarray,
        estimator: str,
        shots: int,
        snapshots: int,
        seeds: list[int] | None,
        compile: str | int = "off",
    ):
        self.states = states
        self.observables = strategy.observables()
        # Bind/compile each Ansatz instance exactly once for the whole sweep
        # (not per chunk); compiled programs pickle to process workers.
        self.programs = _ansatz_programs(strategy, compile)
        self.estimator = estimator
        self.shots = shots
        self.snapshots = snapshots
        self.seeds = seeds

    def __call__(self, job_with_index: tuple[int, FeatureJob]) -> tuple[FeatureJob, np.ndarray]:
        task_id, job = job_with_index
        rng = None if self.seeds is None else np.random.default_rng(self.seeds[task_id])
        block = _evaluate_block(
            self.states[job.lo : job.hi],
            self.programs[job.ansatz_index],
            self.observables,
            self.estimator,
            self.shots,
            self.snapshots,
            rng,
        )
        return job, block


def generate_features(
    strategy: Strategy,
    angles: np.ndarray,
    estimator: str = "exact",
    shots: int = 1024,
    snapshots: int = 512,
    executor: ParallelExecutor | None = None,
    chunk_size: int = 128,
    seed: int | np.random.Generator | None = 0,
    compile: str | int = "off",
) -> np.ndarray:
    """Algorithm 1: the full Q matrix for pooled-angle images ``angles``.

    ``angles`` is (d, rows, cols) with cols == strategy.num_qubits; returns
    (d, m).  ``shots``/``snapshots`` apply per (data point, Ansatz,
    observable) and per (data point, Ansatz) respectively.  ``compile``
    selects the circuit engine (``"auto"``/``"off"``/fusion width; see
    :mod:`repro.quantum.compile`) -- the default ``"off"`` keeps the naive
    reference semantics bit-for-bit.
    """
    angles = np.asarray(angles, dtype=float)
    if angles.ndim != 3:
        raise ValueError("angles must be (d, rows, cols)")
    if angles.shape[2] != strategy.num_qubits:
        raise ValueError(
            f"angles encode {angles.shape[2]} qubits, strategy expects {strategy.num_qubits}"
        )
    states = encode_batch(angles)
    return evaluate_features(
        strategy,
        states,
        estimator=estimator,
        shots=shots,
        snapshots=snapshots,
        executor=executor,
        chunk_size=chunk_size,
        seed=seed,
        compile=compile,
    )


def evaluate_features(
    strategy: Strategy,
    states: np.ndarray,
    estimator: str = "exact",
    shots: int = 1024,
    snapshots: int = 512,
    executor: ParallelExecutor | None = None,
    chunk_size: int = 128,
    seed: int | np.random.Generator | None = 0,
    compile: str | int = "off",
) -> np.ndarray:
    """Q matrix from pre-encoded statevectors ``states`` (d, 2**n)."""
    if estimator not in ESTIMATORS:
        raise ValueError(f"unknown estimator {estimator!r}; choose from {ESTIMATORS}")
    states = np.asarray(states, dtype=np.complex128)
    d = states.shape[0]
    p = strategy.num_ansatze
    q = strategy.num_observables
    executor = executor or ParallelExecutor()

    jobs = [
        FeatureJob(a, lo, hi)
        for a in range(p)
        for (lo, hi) in chunk_ranges(d, chunk_size)
    ]
    # Per-task independent RNG streams: results do not depend on the
    # executor backend or completion order.
    if estimator == "exact":
        seeds = None
    else:
        children = spawn_rngs(seed, len(jobs))
        seeds = [int(c.integers(0, 2**63)) for c in children]

    worker = _BlockWorker(strategy, states, estimator, shots, snapshots, seeds, compile)
    results = executor.map(worker, list(enumerate(jobs)))

    out = np.empty((d, p * q))
    for job, block in results:
        out[job.lo : job.hi, job.ansatz_index * q : (job.ansatz_index + 1) * q] = block
    return out
