"""Feature-generation (Algorithm 1) tests."""

import numpy as np
import pytest

from repro.core.features import (
    FeatureJob,
    evaluate_features,
    feature_circuit_tasks,
    generate_features,
    iter_feature_blocks,
)
from repro.core.strategies import (
    AnsatzExpansion,
    HybridStrategy,
    ObservableConstruction,
)
from repro.data.encoding import encode_batch
from repro.hpc.executor import ParallelExecutor
from repro.hpc.runtime import ExecutionRuntime
from repro.quantum.observables import expectation
from repro.quantum.statevector import run_circuit


@pytest.fixture
def angles():
    rng = np.random.default_rng(0)
    return rng.uniform(0, 2 * np.pi, size=(9, 4, 4))


def manual_algorithm1(strategy, angles):
    """Literal Algorithm 1: nested loops over data, shifts and observables."""
    states = encode_batch(angles)
    q_cols = []
    for params in strategy.parameter_sets():
        circuit = strategy.ansatz
        evolved = (
            run_circuit(circuit.bind(params), state=states)
            if circuit is not None and circuit.num_parameters
            else states
        )
        for obs in strategy.observables():
            q_cols.append(expectation(evolved, obs))
    return np.stack(q_cols, axis=1)


@pytest.mark.parametrize(
    "strategy",
    [
        ObservableConstruction(qubits=4, locality=1),
        AnsatzExpansion(order=1),
        HybridStrategy(order=1, locality=1),
    ],
    ids=["observable", "ansatz", "hybrid"],
)
def test_matches_literal_algorithm1(strategy, angles):
    q = generate_features(strategy, angles)
    assert q.shape == (9, strategy.num_features)
    assert np.allclose(q, manual_algorithm1(strategy, angles), atol=1e-12)


def test_identity_observable_column_is_one(angles):
    s = ObservableConstruction(qubits=4, locality=1)
    q = generate_features(s, angles)
    assert np.allclose(q[:, 0], 1.0)  # identity Pauli first


def test_features_bounded(angles):
    q = generate_features(HybridStrategy(order=1, locality=2), angles)
    assert np.all(q >= -1 - 1e-9) and np.all(q <= 1 + 1e-9)


def test_executor_backends_identical(angles):
    s = HybridStrategy(order=1, locality=1)
    serial = generate_features(s, angles)
    threaded = generate_features(
        s, angles, executor=ParallelExecutor("thread", 4), chunk_size=3
    )
    assert np.array_equal(serial, threaded)


def test_chunk_size_invariance(angles):
    s = ObservableConstruction(qubits=4, locality=2)
    a = generate_features(s, angles, chunk_size=2)
    b = generate_features(s, angles, chunk_size=128)
    assert np.array_equal(a, b)


def test_shots_estimator_converges(angles):
    s = ObservableConstruction(qubits=4, locality=1)
    exact = generate_features(s, angles)
    noisy = generate_features(s, angles, estimator="shots", shots=8000, seed=5)
    assert np.max(np.abs(exact - noisy)) < 0.1


def test_shots_estimator_deterministic_under_seed(angles):
    s = ObservableConstruction(qubits=4, locality=1)
    a = generate_features(s, angles, estimator="shots", shots=100, seed=3)
    b = generate_features(s, angles, estimator="shots", shots=100, seed=3)
    assert np.array_equal(a, b)
    c = generate_features(s, angles, estimator="shots", shots=100, seed=4)
    assert not np.array_equal(a, c)


def test_shots_estimator_schedule_independent(angles):
    """Per-task RNG spawning: results identical across executors."""
    s = ObservableConstruction(qubits=4, locality=1)
    serial = generate_features(s, angles, estimator="shots", shots=64, seed=11, chunk_size=4)
    threaded = generate_features(
        s,
        angles,
        estimator="shots",
        shots=64,
        seed=11,
        chunk_size=4,
        executor=ParallelExecutor("thread", 3),
    )
    assert np.array_equal(serial, threaded)


def test_shadows_estimator_reasonable(angles):
    s = ObservableConstruction(qubits=4, locality=1)
    exact = generate_features(s, angles[:3])
    shadow = generate_features(s, angles[:3], estimator="shadows", snapshots=4000, seed=2)
    assert np.max(np.abs(exact - shadow)) < 0.35


def test_evaluate_features_on_states(angles):
    states = encode_batch(angles)
    s = ObservableConstruction(qubits=4, locality=1)
    via_angles = generate_features(s, angles)
    via_states = evaluate_features(s, states)
    assert np.allclose(via_angles, via_states)


def test_validation(angles):
    s = ObservableConstruction(qubits=4, locality=1)
    with pytest.raises(ValueError):
        generate_features(s, angles[0])  # not 3-D
    with pytest.raises(ValueError):
        generate_features(s, angles[:, :, :3])  # wrong qubit count
    with pytest.raises(ValueError):
        generate_features(s, angles, estimator="bogus")


# ---------------------------------------------------------------- streaming
def test_iter_feature_blocks_tiles_the_matrix(angles):
    s = HybridStrategy(order=1, locality=1)
    states = encode_batch(angles)
    reference = evaluate_features(s, states, chunk_size=4)
    q = s.num_observables
    assembled = np.full_like(reference, np.nan)
    count = 0
    for job, block in iter_feature_blocks(s, states, chunk_size=4):
        assert block.shape == (job.hi - job.lo, q)
        target = assembled[job.lo : job.hi, job.ansatz_index * q : (job.ansatz_index + 1) * q]
        assert np.all(np.isnan(target))  # each job yielded exactly once
        assembled[job.lo : job.hi, job.ansatz_index * q : (job.ansatz_index + 1) * q] = block
        count += 1
    assert count == s.num_ansatze * 3  # ceil(9/4) = 3 chunks
    assert np.array_equal(assembled, reference)


def test_iter_feature_blocks_stochastic_matches_evaluate(angles):
    s = ObservableConstruction(qubits=4, locality=1)
    states = encode_batch(angles)
    reference = evaluate_features(s, states, estimator="shots", shots=64, seed=9, chunk_size=3)
    q = s.num_observables
    assembled = np.empty_like(reference)
    for job, block in iter_feature_blocks(
        s, states, estimator="shots", shots=64, seed=9, chunk_size=3
    ):
        assembled[job.lo : job.hi, job.ansatz_index * q : (job.ansatz_index + 1) * q] = block
    assert np.array_equal(assembled, reference)


def test_iter_feature_blocks_validates_eagerly(angles):
    s = ObservableConstruction(qubits=4, locality=1)
    states = encode_batch(angles)
    with pytest.raises(ValueError):
        iter_feature_blocks(s, states, dispatch_policy="fifo")
    with pytest.raises(ValueError):
        iter_feature_blocks(s, states, estimator="bogus")


def test_preallocated_out_filled_in_place(angles):
    s = ObservableConstruction(qubits=4, locality=1)
    states = encode_batch(angles)
    reference = evaluate_features(s, states)
    buf = np.zeros_like(reference)
    returned = evaluate_features(s, states, out=buf)
    assert returned is buf
    assert np.array_equal(buf, reference)
    with pytest.raises(ValueError):
        evaluate_features(s, states, out=np.zeros((2, 2)))
    with pytest.raises(ValueError):
        evaluate_features(s, states, out=np.zeros_like(reference, dtype=np.float32))


def test_dispatch_report_covers_all_tasks(angles):
    s = ObservableConstruction(qubits=4, locality=1)
    states = encode_batch(angles)
    q_matrix, report = evaluate_features(
        s, states, chunk_size=3, dispatch_policy="lpt", return_report=True
    )
    assert np.array_equal(q_matrix, evaluate_features(s, states, chunk_size=3))
    assert report.policy == "lpt"
    assert report.num_tasks == 3  # p=1 x ceil(9/3) chunks
    assert all(sec >= 0 for sec in report.measured_seconds)
    assert all(cost > 0 for cost in report.predicted_costs)
    assert set(report.reconcile()) >= {"projected_makespan", "wall_s", "cost_correlation"}


def test_dispatch_policy_does_not_change_results(angles):
    s = HybridStrategy(order=1, locality=1)
    states = encode_batch(angles)
    reference = evaluate_features(s, states, chunk_size=3)
    with ParallelExecutor("thread", 3) as ex:
        for policy in ("block", "cyclic", "lpt", "work_stealing"):
            q = evaluate_features(
                s, states, executor=ex, chunk_size=3, dispatch_policy=policy
            )
            assert np.array_equal(q, reference), policy


def test_bare_runtime_accepted_as_executor(angles):
    s = ObservableConstruction(qubits=4, locality=1)
    states = encode_batch(angles)
    with ExecutionRuntime("thread", 2) as rt:
        q = evaluate_features(s, states, executor=rt, chunk_size=3)
    assert np.array_equal(q, evaluate_features(s, states))


def test_feature_circuit_tasks_price_depth_and_shots(angles):
    s = HybridStrategy(order=1, locality=1)
    jobs = [FeatureJob(0, 0, 4), FeatureJob(0, 4, 6)]
    programs = [s.ansatz]
    exact = feature_circuit_tasks(jobs, programs, s.num_qubits, s.num_observables, "exact", 0, 0)
    assert [t.num_circuits for t in exact] == [4, 2]
    assert all(t.shots == 0 for t in exact)
    assert exact[0].classical_flops > exact[1].classical_flops  # bigger chunk costs more
    shots = feature_circuit_tasks(jobs, programs, s.num_qubits, s.num_observables, "shots", 32, 0)
    assert all(t.shots == 32 * s.num_observables for t in shots)
    shadows = feature_circuit_tasks(
        jobs, programs, s.num_qubits, s.num_observables, "shadows", 0, 128
    )
    assert all(t.shots == 128 for t in shadows)
    # Deeper programs cost more classical work than no program at all.
    empty = feature_circuit_tasks(jobs, [None], s.num_qubits, s.num_observables, "exact", 0, 0)
    assert exact[0].classical_flops > empty[0].classical_flops
