"""FeatureService lifecycle, caching, backpressure, metrics, errors."""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.api.config import ExecutionConfig
from repro.api.device import QuantumDevice
from repro.core.strategies import strategy_from_name
from repro.serve import (
    BackpressureError,
    FeatureClient,
    FeatureService,
    InProcessTransport,
    ServeConfig,
    ServiceClosedError,
)
from repro.serve.engine import plan_request

QUBITS = 3
ROWS = 2


def make_service(**overrides) -> FeatureService:
    defaults = dict(
        batch_window_ms=2.0,
        pool="serial",
        execution=ExecutionConfig(vectorize="auto", compile="auto", seed=7),
    )
    defaults.update(overrides)
    service = FeatureService(ServeConfig(**defaults))
    service.register(
        "t", strategy_from_name("observable", num_qubits=QUBITS), rows=ROWS
    )
    return service


def angles(k: int = 2, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.uniform(0, np.pi, size=(k, ROWS, QUBITS))


def test_submit_requires_start():
    service = make_service()

    async def main():
        with pytest.raises(ServiceClosedError, match="not started"):
            await service.submit("t", angles())

    asyncio.run(main())


def test_submit_after_stop_rejected():
    async def main():
        service = make_service()
        async with service:
            pass
        with pytest.raises(ServiceClosedError, match="stopped"):
            await service.submit("t", angles())

    asyncio.run(main())


def test_unknown_template_rejected():
    async def main():
        async with make_service() as service:
            with pytest.raises(KeyError, match="unknown template"):
                await service.submit("nope", angles())

    asyncio.run(main())


def test_bad_shape_rejected():
    async def main():
        async with make_service() as service:
            with pytest.raises(ValueError, match="expects"):
                await service.submit("t", np.zeros((2, ROWS, QUBITS + 1)))

    asyncio.run(main())


def test_single_sample_round_trip():
    async def main():
        async with make_service() as service:
            x = angles(k=1)
            single = await service.submit("t", x[0])
            batch = await service.submit("t", x)
            assert single.ndim == 1
            assert np.array_equal(single, batch[0])

    asyncio.run(main())


def test_duplicate_registration_rejected():
    service = make_service()
    with pytest.raises(ValueError, match="already registered"):
        service.register(
            "t", strategy_from_name("observable", num_qubits=QUBITS), rows=ROWS
        )


def test_template_shape_and_templates():
    service = make_service()
    assert service.templates() == ("t",)
    assert service.template_shape("t") == (ROWS, QUBITS)


def test_start_refuses_starving_weights():
    service = make_service(tenant_weights={"a": 0.0})

    async def main():
        with pytest.raises(ValueError, match="RPA112"):
            await service.start()

    asyncio.run(main())


def test_cache_hits_identical_requests():
    async def main():
        async with make_service() as service:
            x = angles()
            first = await service.submit("t", x)
            second = await service.submit("t", x)
            assert np.array_equal(first, second)
            metrics = service.metrics()
            assert metrics.cache_hits_total == 1
            assert metrics.flushes_total == 1
            # Responses are copies: mutating one never poisons the cache.
            second[0, 0] = 1e9
            third = await service.submit("t", x)
            assert np.array_equal(first, third)

    asyncio.run(main())


def test_stochastic_seedless_requests_bypass_cache():
    async def main():
        service = make_service(
            execution=ExecutionConfig(
                estimator="shots", shots=64, vectorize="auto",
                compile="auto", seed=None,
            )
        )
        async with service:
            x = angles()
            await service.submit("t", x)
            await service.submit("t", x)
            assert service.metrics().cache_hits_total == 0

    asyncio.run(main())


def test_backpressure_rejects_and_counts():
    async def main():
        # Depth 1 with a long window: the second concurrent request of the
        # same tenant must bounce at admission.
        service = make_service(
            max_queue_depth=1, batch_window_ms=50.0, cache_results=False
        )
        async with service:
            first = asyncio.ensure_future(service.submit("t", angles(seed=1)))
            await asyncio.sleep(0)  # first request reaches the batcher
            with pytest.raises(BackpressureError):
                await service.submit("t", angles(seed=2))
            assert await first is not None
        metrics = service.metrics()
        assert metrics.rejected_total == 1
        assert metrics.tenants[0][1].rejected == 1

    asyncio.run(main())


def test_metrics_snapshot_shape():
    async def main():
        async with make_service() as service:
            await asyncio.gather(
                service.submit("t", angles(seed=1), tenant="a"),
                service.submit("t", angles(seed=2), tenant="b"),
            )
            snap = service.metrics().to_dict()
            assert snap["requests_total"] == 2
            assert snap["responses_total"] == 2
            assert snap["queue_depth"] == 0
            assert set(snap["tenants"]) == {"a", "b"}
            assert "hits" in snap["compile_cache"]
            assert "hits" in snap["result_cache"]
            assert snap["coalesce_ratio"] >= 1.0

    asyncio.run(main())


def test_flush_error_fans_out_and_counts(monkeypatch):
    def boom(artifacts, requests):
        raise RuntimeError("kernel exploded")

    monkeypatch.setattr("repro.serve.service.execute_flush", boom)

    async def main():
        async with make_service(cache_results=False) as service:
            results = await asyncio.gather(
                service.submit("t", angles(seed=1)),
                service.submit("t", angles(seed=2)),
                return_exceptions=True,
            )
            # The failure fans out: every waiter resolves with the error,
            # nothing wedges the loop.
            assert len(results) == 2
            assert all(isinstance(r, RuntimeError) for r in results)
            metrics = service.metrics()
            assert metrics.errors_total == 2
            assert metrics.queue_depth == 0

    asyncio.run(main())


def test_injected_device_not_closed_by_service():
    async def main():
        device = QuantumDevice(
            ExecutionConfig(vectorize="auto", compile="auto", seed=7)
        )
        service = FeatureService(ServeConfig(pool="serial"), device=device)
        service.register(
            "t", strategy_from_name("observable", num_qubits=QUBITS), rows=ROWS
        )
        async with service:
            await service.submit("t", angles())
        assert not device.closed
        device.close()

    asyncio.run(main())


def test_generator_seed_rejected():
    async def main():
        async with make_service() as service:
            with pytest.raises(TypeError, match="Generator"):
                await service.submit(
                    "t", angles(), seed=np.random.default_rng(0)
                )

    asyncio.run(main())


def test_predict_requires_head_and_uses_it():
    class DoubleHead:
        def predict(self, features):
            return features * 2

    async def main():
        service = make_service()
        service.register(
            "headed",
            strategy_from_name("observable", num_qubits=QUBITS),
            rows=ROWS,
            head=DoubleHead(),
        )
        async with service:
            with pytest.raises(ValueError, match="no head"):
                await service.predict("t", angles())
            x = angles()
            features = await service.submit("headed", x)
            predicted = await service.predict("headed", x)
            assert np.array_equal(predicted, features * 2)

    asyncio.run(main())


def test_feature_client_pins_tenant():
    async def main():
        async with make_service(cache_results=False) as service:
            client = FeatureClient(
                transport=InProcessTransport(service), tenant="team-a"
            )
            await client.features("t", angles())
            metrics = service.metrics()
            assert metrics.tenants[0][0] == "team-a"

    asyncio.run(main())


def test_feature_client_service_form_is_deprecated_shim():
    async def main():
        async with make_service(cache_results=False) as service:
            with pytest.warns(DeprecationWarning, match="InProcessTransport"):
                client = FeatureClient(service, tenant="team-a")
            assert client.service is service  # the accessor still works
            x = angles()
            via_shim = await client.features("t", x, seed=3)
            direct = await service.submit("t", x, tenant="team-a", seed=3)
            assert np.array_equal(via_shim, direct)

    asyncio.run(main())


def test_feature_client_requires_exactly_one_target():
    service = make_service()
    with pytest.raises(TypeError, match="exactly one"):
        FeatureClient()
    with pytest.raises(TypeError, match="exactly one"):
        FeatureClient(service, transport=InProcessTransport(service))


def test_admission_released_when_flush_fails(monkeypatch):
    def boom(artifacts, requests):
        raise RuntimeError("kernel exploded")

    monkeypatch.setattr("repro.serve.service.execute_flush", boom)

    async def main():
        service = make_service(max_queue_depth=1, cache_results=False)
        async with service:
            with pytest.raises(RuntimeError, match="kernel exploded"):
                await service.submit("t", angles(seed=1))
            # The failed request's admission units came back: depth is 0
            # and the tenant is re-admittable (a leak would bounce this
            # immediately with BackpressureError at depth 1).
            assert service.metrics().queue_depth == 0
            with pytest.raises(RuntimeError, match="kernel exploded"):
                await service.submit("t", angles(seed=2))

    asyncio.run(main())


def test_admission_released_when_planning_fails(monkeypatch):
    def bad_plan(num_ansatze, num_samples, cfg, seed):
        raise RuntimeError("planner exploded")

    monkeypatch.setattr("repro.serve.service.plan_request", bad_plan)

    async def main():
        service = make_service(max_queue_depth=1, cache_results=False)
        async with service:
            with pytest.raises(RuntimeError, match="planner exploded"):
                await service.submit("t", angles(seed=1))
            assert service.metrics().queue_depth == 0
            monkeypatch.setattr(
                "repro.serve.service.plan_request", plan_request
            )
            # Capacity leaked between try_acquire and enqueue would make
            # this healthy retry bounce at depth 1.
            assert (await service.submit("t", angles(seed=2))) is not None

    asyncio.run(main())


def test_stop_is_idempotent():
    async def main():
        service = make_service()
        await service.start()
        await service.stop()
        await service.stop()
        assert service.closed

    asyncio.run(main())
