"""``QuantumFeatureMap`` -- the Q-matrix sweep as a sklearn transformer.

The post-variational method *is* a feature map (Definition 1: ``Q_ij =
tr(O_j rho_theta(x_i))``) followed by a classical convex head.  This module
exposes exactly that split in the sklearn transformer idiom -- ``fit`` /
``transform`` / ``fit_transform`` / ``get_params`` -- so the quantum
features compose with any classical estimator or ``Pipeline`` without the
head baked in::

    fmap = QuantumFeatureMap(strategy, config=ExecutionConfig(compile="auto"))
    q_train = fmap.fit_transform(x_train)       # (d, p*q) feature matrix
    q_test = fmap.transform(x_test)
    head = LogisticRegression().fit(q_train, y_train)

``X`` may be the raw ``(d, rows, cols)`` angle batch or its 2-D flattened
form ``(d, rows*cols)`` (the sklearn convention); columns are grouped
``cols == strategy.num_qubits`` wide, matching the Fig. 7 encoder layout.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.api.config import ExecutionConfig
from repro.api.device import QuantumDevice
from repro.hpc.runtime import DispatchReport

__all__ = ["QuantumFeatureMap"]


class QuantumFeatureMap:
    """sklearn-style transformer over a :class:`QuantumDevice` session.

    Exactly one of ``config`` / ``device`` configures execution (neither
    means the ideal-statevector defaults).  A caller-supplied device is
    shared, never closed from here; a config-built device is owned and
    released by :meth:`close` (or the ``with`` block).
    """

    def __init__(
        self,
        strategy: Any = None,
        *,
        config: ExecutionConfig | None = None,
        device: QuantumDevice | None = None,
    ) -> None:
        if strategy is None:
            raise ValueError("strategy is required")
        if config is not None and device is not None:
            raise TypeError("pass config= or device=, not both")
        self.strategy = strategy
        self.config = config
        self.device = device
        self._owned_device: QuantumDevice | None = None
        self._owned_config: ExecutionConfig | None = None
        self.n_features_in_: int | None = None
        self.last_report_: DispatchReport | None = None

    # --------------------------------------------------------- sklearn plumbing
    def get_params(self, deep: bool = True) -> dict:
        return {"strategy": self.strategy, "config": self.config, "device": self.device}

    def set_params(self, **params: Any) -> QuantumFeatureMap:
        unknown = [k for k in params if k not in ("strategy", "config", "device")]
        if unknown:
            raise ValueError(
                f"invalid parameter {unknown[0]!r} for QuantumFeatureMap"
            )
        # Validate the *prospective* state before mutating anything: a
        # caller catching the error must not be left with a transformer
        # holding both config and device (where transform() would silently
        # prefer the device).
        prospective = {
            k: params.get(k, getattr(self, k))
            for k in ("strategy", "config", "device")
        }
        if prospective["strategy"] is None:
            raise ValueError("strategy is required")
        if prospective["config"] is not None and prospective["device"] is not None:
            raise TypeError("pass config= or device=, not both")
        for key, value in params.items():
            setattr(self, key, value)
        return self

    def get_feature_names_out(self, input_features: Any = None) -> np.ndarray:
        """Ansatz-major feature names, matching Definition 1's (p, q) order."""
        q = self.strategy.num_observables
        return np.asarray(
            [
                f"ansatz{a}_obs{b}"
                for a in range(self.strategy.num_ansatze)
                for b in range(q)
            ],
            dtype=object,
        )

    # --------------------------------------------------------------- lifecycle
    def _active_device(self) -> QuantumDevice:
        if self.device is not None:
            return self.device
        # Rebuild the owned session when missing, closed, or stale -- a
        # set_params(config=...) between transforms must take effect (the
        # sklearn contract), not silently keep the old config's device.
        if (
            self._owned_device is None
            or self._owned_device.closed
            or self._owned_config is not self.config
        ):
            self.close()
            self._owned_device = QuantumDevice(self.config)
            self._owned_config = self.config
        return self._owned_device

    def close(self) -> None:
        """Release the owned device session (shared devices are untouched)."""
        if self._owned_device is not None:
            self._owned_device.close()
            self._owned_device = None

    def __enter__(self) -> QuantumFeatureMap:
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------- validation
    def _as_angles(self, X: np.ndarray) -> np.ndarray:
        """Coerce 2-D (sklearn) or 3-D (native) input to ``(d, rows, cols)``."""
        X = np.asarray(X, dtype=float)
        n = self.strategy.num_qubits
        if X.ndim == 3:
            if X.shape[2] != n:
                raise ValueError(
                    f"angles encode {X.shape[2]} qubits, strategy expects {n}"
                )
            return X
        if X.ndim == 2:
            if X.shape[1] == 0 or X.shape[1] % n != 0:
                raise ValueError(
                    f"2-D input must have a column count divisible by "
                    f"num_qubits={n}, got {X.shape[1]}"
                )
            return X.reshape(X.shape[0], -1, n)
        raise ValueError(f"X must be 2-D or 3-D, got shape {X.shape}")

    # ------------------------------------------------------------ fit/transform
    def fit(self, X: np.ndarray, y: Any = None) -> QuantumFeatureMap:
        """Validate ``X`` and freeze the input width (the ensemble is fixed,
        so fitting performs no quantum work)."""
        angles = self._as_angles(X)
        self.n_features_in_ = int(angles.shape[1] * angles.shape[2])
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        """The Q matrix for ``X``: shape ``(d, strategy.num_features)``."""
        if self.n_features_in_ is None:
            raise RuntimeError("QuantumFeatureMap is not fitted; call fit(X) first")
        angles = self._as_angles(X)
        width = int(angles.shape[1] * angles.shape[2])
        if width != self.n_features_in_:
            raise ValueError(
                f"X has {width} features per sample, but QuantumFeatureMap was "
                f"fitted with {self.n_features_in_}"
            )
        q_matrix, report = self._active_device().run(self.strategy, angles)
        self.last_report_ = report
        return q_matrix

    def fit_transform(self, X: np.ndarray, y: Any = None) -> np.ndarray:
        return self.fit(X, y).transform(X)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        source = (
            "device" if self.device is not None
            else "config" if self.config is not None
            else "default"
        )
        return f"QuantumFeatureMap({self.strategy!r}, {source})"
