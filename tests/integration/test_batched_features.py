"""Algorithm 1 under batched structure-shared execution.

Pins ``vectorize="auto"`` to the per-sample oracle (``vectorize="off"``)
across estimators, strategies, compile settings and executor backends: the
job grid and per-task seed derivation are shared, so exact sweeps agree to
1e-10 and stochastic sweeps are seed-for-seed identical.  Also covers the
batched stacked-superoperator path on noisy/mitigated backends, the graceful
fallback on backends without batched execution, the cost-model wiring and
the pipeline/session surfaces.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import ExecutionConfig, QuantumDevice
from repro.core.ansatz import fig8_ansatz
from repro.core.features import (
    feature_circuit_tasks,
    feature_jobs,
    generate_features,
)
from repro.core.pipeline import PIPELINE_DEFAULT_CONFIG, HybridPipeline
from repro.core.strategies import (
    AnsatzExpansion,
    HybridStrategy,
    ObservableConstruction,
)
from repro.data.encoding import encoding_template
from repro.hpc.executor import ParallelExecutor
from repro.quantum.backends import (
    DensityMatrixBackend,
    DistributedStatevectorBackend,
    MitigatedBackend,
    StatevectorBackend,
)
from repro.quantum.batched import compile_parametric, extend_template
from repro.quantum.noise import NoiseModel

STRATEGIES = [
    pytest.param(AnsatzExpansion(circuit=fig8_ansatz(4, 2), order=1), id="expansion"),
    pytest.param(ObservableConstruction(qubits=4, locality=2), id="observable"),
    pytest.param(HybridStrategy(circuit=fig8_ansatz(4, 1), order=1, locality=1), id="hybrid"),
]


@pytest.fixture(scope="module")
def angles():
    rng = np.random.default_rng(42)
    return rng.uniform(0, 2 * np.pi, size=(19, 4, 4))


def _cfg(**kw):
    kw.setdefault("chunk_size", 5)
    return ExecutionConfig(**kw)


# --------------------------------------------------------------- equivalence
@pytest.mark.parametrize("strategy", STRATEGIES)
@pytest.mark.parametrize("compile", ["off", "auto"])
def test_exact_sweep_matches_per_sample_oracle(strategy, angles, compile):
    oracle = generate_features(
        strategy, angles, config=_cfg(compile=compile, vectorize="off")
    )
    batched = generate_features(
        strategy, angles, config=_cfg(compile=compile, vectorize="auto")
    )
    assert np.abs(batched - oracle).max() < 1e-10


@pytest.mark.parametrize("strategy", STRATEGIES)
@pytest.mark.parametrize(
    "estimator, kwargs",
    [("shots", dict(shots=64)), ("shadows", dict(snapshots=32))],
)
def test_stochastic_sweeps_seed_identical(strategy, angles, estimator, kwargs):
    """Same job grid + same per-task seeds => draw-for-draw identical."""
    if estimator == "shadows" and strategy.num_observables == 1:
        kwargs = dict(snapshots=48)
    oracle = generate_features(
        strategy, angles,
        config=_cfg(estimator=estimator, seed=11, vectorize="off", **kwargs),
    )
    batched = generate_features(
        strategy, angles,
        config=_cfg(estimator=estimator, seed=11, vectorize="auto", **kwargs),
    )
    assert np.array_equal(oracle, batched)


@pytest.mark.parametrize("pool", ["serial", "thread", "process"])
def test_executor_backends_agree_bit_for_bit(angles, pool):
    """Batched programs pickle: every pool yields the same exact matrix."""
    strategy = ObservableConstruction(qubits=4, locality=1)
    reference = generate_features(strategy, angles, config=_cfg(vectorize="auto"))
    with ParallelExecutor(backend=pool, max_workers=2) as executor:
        via_pool = generate_features(
            strategy, angles, executor=executor, config=_cfg(vectorize="auto")
        )
    assert np.array_equal(reference, via_pool)


@pytest.mark.parametrize("policy", ["block", "cyclic", "lpt", "work_stealing"])
def test_dispatch_policy_independence(angles, policy):
    strategy = HybridStrategy(circuit=fig8_ansatz(4, 1), order=1, locality=1)
    reference = generate_features(strategy, angles, config=_cfg(vectorize="auto"))
    got = generate_features(
        strategy, angles, config=_cfg(vectorize="auto", dispatch_policy=policy)
    )
    assert np.array_equal(reference, got)


# -------------------------------------------------- noisy regimes vectorize
def _noisy_angles(rows: int = 7):
    rng = np.random.default_rng(0)
    return rng.uniform(0, 2 * np.pi, size=(rows, 2, 2))


def test_density_backend_vectorizes():
    """Gate-level-noise backends now run the batched stacked-superoperator
    path under vectorize="auto" -- same answer as per-sample, to 1e-10."""
    angles = _noisy_angles()
    strategy = ObservableConstruction(qubits=2, locality=1)
    backend = DensityMatrixBackend(NoiseModel.depolarizing(0.01))
    assert backend.supports_vectorize
    off = generate_features(
        strategy, angles, config=ExecutionConfig(backend=backend, vectorize="off")
    )
    auto = generate_features(
        strategy, angles, config=ExecutionConfig(backend=backend, vectorize="auto")
    )
    assert np.abs(auto - off).max() < 1e-10


def test_mitigated_sweep_vectorizes_seed_identical():
    """Regression: mitigated sweeps used to silently fall back to the
    per-sample path (supports_vectorize was False); the batched folded
    programs must now produce the same seed-contracted draws bit for bit."""
    angles = _noisy_angles()
    strategy = ObservableConstruction(qubits=2, locality=1)

    def cfg(vectorize):
        backend = MitigatedBackend(DensityMatrixBackend(NoiseModel.depolarizing(0.01)))
        assert backend.supports_vectorize
        return ExecutionConfig(
            backend=backend, vectorize=vectorize, estimator="shots", shots=64, seed=7
        )

    off = generate_features(strategy, angles, config=cfg("off"))
    auto = generate_features(strategy, angles, config=cfg("auto"))
    assert np.array_equal(off, auto)

    exact_off = generate_features(
        strategy, angles,
        config=ExecutionConfig(
            backend=MitigatedBackend(DensityMatrixBackend(NoiseModel.depolarizing(0.01))),
            vectorize="off",
        ),
    )
    exact_auto = generate_features(
        strategy, angles,
        config=ExecutionConfig(
            backend=MitigatedBackend(DensityMatrixBackend(NoiseModel.depolarizing(0.01))),
            vectorize="auto",
        ),
    )
    assert np.abs(exact_auto - exact_off).max() < 1e-10


def test_backends_without_batched_execution_fall_back():
    """vectorize="auto" stays a bit-exact no-op where no batched program
    exists: sharded statevector execution and statevector-wrapped ZNE."""
    assert not DistributedStatevectorBackend(shards=2).supports_vectorize
    assert not MitigatedBackend(StatevectorBackend()).supports_vectorize
    assert MitigatedBackend(DensityMatrixBackend()).supports_vectorize

    rng = np.random.default_rng(1)
    angles = rng.uniform(0, 2 * np.pi, size=(5, 4, 4))
    strategy = ObservableConstruction(qubits=4, locality=1)
    backend = DistributedStatevectorBackend(shards=2)
    off = generate_features(
        strategy, angles, config=ExecutionConfig(backend=backend, vectorize="off")
    )
    auto = generate_features(
        strategy, angles, config=ExecutionConfig(backend=backend, vectorize="auto")
    )
    assert np.array_equal(off, auto)


# ----------------------------------------------------------------- cost model
def test_cost_model_prices_batched_segments(angles):
    """The CircuitTask projection sees the batched program's kernel-launch
    count (fused blocks + angle chains), not the raw gate count."""
    strategy = AnsatzExpansion(circuit=fig8_ansatz(4, 1), order=0)
    template = encoding_template(4, 4)
    programs = [
        compile_parametric(extend_template(template, strategy.ansatz.bind(p)))
        for p in strategy.parameter_sets()
    ]
    jobs = feature_jobs(strategy.num_ansatze, angles.shape[0], 5)
    tasks = feature_circuit_tasks(
        jobs, programs, strategy.num_qubits, strategy.num_observables,
        "exact", 0, 0,
    )
    assert len(tasks) == len(jobs)
    segments = programs[0].num_segments
    for task, job in zip(tasks, jobs, strict=True):
        chunk = job.hi - job.lo
        expected = float(chunk * 16 * (4 * segments + strategy.num_observables))
        assert task.classical_flops == expected


# ------------------------------------------------------------------ surfaces
def test_pipeline_defaults_run_batched(angles):
    assert PIPELINE_DEFAULT_CONFIG.vectorize == "auto"
    y = np.arange(19) % 2
    strategy = ObservableConstruction(qubits=4, locality=1)
    with HybridPipeline(strategy=strategy) as batched:
        batched.fit(angles, y)
        q_batched = batched.predict(angles)
    with HybridPipeline(
        strategy=strategy, config=PIPELINE_DEFAULT_CONFIG.merged(vectorize="off")
    ) as oracle:
        oracle.fit(angles, y)
        q_oracle = oracle.predict(angles)
    assert np.array_equal(q_batched, q_oracle)


def test_device_session_carries_vectorize(angles):
    strategy = ObservableConstruction(qubits=4, locality=1)
    oracle = generate_features(strategy, angles, config=_cfg(vectorize="off"))
    with QuantumDevice(_cfg(vectorize="auto")) as dev:
        q, report = dev.run(strategy, angles)
        assert report.policy == "work_stealing"
        # reconfigured() flips the knob without rebuilding the pool.
        q_off, _ = dev.reconfigured(vectorize="off").run(strategy, angles)
    assert np.abs(q - oracle).max() < 1e-10
    assert np.array_equal(q_off, oracle)
