"""Network transport: asyncio TCP server + client for the serving layer.

:class:`FeatureServer` fronts a started :class:`FeatureService` with a
stdlib ``asyncio.start_server`` listener speaking the length-prefixed
JSON+binary protocol of :mod:`repro.serve.protocol`.  One connection
multiplexes any number of in-flight requests (frames carry request ids),
so concurrent submits from one client coalesce in the service's
micro-batcher exactly like in-process peers.  The contract carried over
the wire is the service's own: a TCP response is decoded from the raw
bytes of the array the in-process ``submit`` produced, hence bit-equal
to ``generate_features(strategy, x, config=execution.merged(seed=seed))``.

Deadlines and disconnects map onto the service's withdrawal paths:

* a per-request ``timeout_s`` (header, falling back to the transport
  config's ``request_timeout_s``) rides into ``service.submit`` -- on
  expiry the one request leaves its coalescing group and its client gets
  an ``error`` frame with code ``timeout`` while flush-mates complete;
* a client that disconnects mid-request has its server-side tasks
  cancelled, which withdraws its requests the same way.

Responses bigger than one frame -- or past ``stream_threshold_rows`` --
stream as one ``block`` frame per (ansatz, chunk) slice, the same block
decomposition ``iter_feature_blocks`` yields, bracketed by ``begin`` /
``end``.  :meth:`FeatureServer.stop` drains gracefully: the listener
closes first (no new connections), in-flight requests run to completion,
then connections close.

:class:`TcpTransport` is the client half: it implements the
:class:`~repro.serve.client.Transport` protocol over a socket, caching
the ``welcome`` catalog so ``templates()`` / ``template_shape()`` stay
synchronous, reassembling streamed blocks into the preallocated response
array, and re-raising typed errors from stable wire codes.
"""

from __future__ import annotations

import asyncio
import contextlib
from typing import Any

import numpy as np

from repro.api.config import UNSET, TransportConfig
from repro.hpc.partition import chunk_ranges
from repro.serve.fairness import BackpressureError
from repro.serve.protocol import (
    FRAME_OVERHEAD,
    PROTOCOL_VERSION,
    ProtocolError,
    decode_array,
    encode_array,
    pack_frame,
    read_frame,
)
from repro.serve.service import (
    FeatureService,
    RequestTimeoutError,
    ServiceClosedError,
)

__all__ = ["FeatureServer", "TcpTransport"]

#: Slack reserved for the JSON header when sizing streamed block payloads
#: against ``max_frame_bytes`` (headers are tens of bytes; 512 is safe).
_HEADER_SLACK = 512


def _error_code(exc: BaseException) -> str:
    """Map a service-side exception onto its stable wire code."""
    if isinstance(exc, RequestTimeoutError):
        return "timeout"
    if isinstance(exc, BackpressureError):
        return "backpressure"
    if isinstance(exc, KeyError):
        return "unknown_template"
    if isinstance(exc, ServiceClosedError):
        return "unavailable"
    if isinstance(exc, ProtocolError):
        return "protocol"
    if isinstance(exc, (ValueError, TypeError)):
        return "bad_request"
    return "internal"


def _raise_for_code(code: str, message: str, header: dict[str, Any]) -> None:
    """Client side: re-raise the typed exception a wire code stands for."""
    if code == "timeout":
        raise RequestTimeoutError(
            message,
            template=str(header.get("template", "")),
            tenant=str(header.get("tenant", "")),
            timeout_s=header.get("timeout_s"),
        )
    if code == "backpressure":
        raise BackpressureError(message)
    if code == "unknown_template":
        raise KeyError(message)
    if code == "unavailable":
        raise ServiceClosedError(message)
    if code == "protocol":
        raise ProtocolError(message)
    if code == "bad_request":
        raise ValueError(message)
    raise RuntimeError(message)


class _Connection:
    """Server-side state of one accepted connection."""

    __slots__ = ("reader", "writer", "tasks")

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.reader = reader
        self.writer = writer
        self.tasks: set[asyncio.Task] = set()

    async def send(self, header: dict[str, Any], payload: bytes = b"") -> None:
        """Write one frame; drain for backpressure.

        No write lock: each frame is packed into ONE bytes object and
        ``StreamWriter.write`` appends it atomically on the loop, so
        concurrent senders cannot interleave frame fragments.
        """
        self.writer.write(pack_frame(header, payload))
        await self.writer.drain()


class FeatureServer:
    """TCP front over a started :class:`FeatureService`.

    Usage::

        async with service, FeatureServer(service) as server:
            host, port = server.address
            ...

    The transport config comes from (in precedence order) the
    ``transport=`` override, ``service.config.transport``, or plain
    :class:`TransportConfig` defaults.  The server borrows the service:
    stopping the server never stops the service.
    """

    def __init__(
        self,
        service: FeatureService,
        *,
        transport: TransportConfig | None = None,
    ) -> None:
        if not isinstance(service, FeatureService):
            raise TypeError(f"service must be a FeatureService, got {service!r}")
        if transport is None:
            transport = service.config.transport
        if transport is None:
            transport = TransportConfig()
        if not isinstance(transport, TransportConfig):
            raise TypeError(f"transport must be a TransportConfig, got {transport!r}")
        self.service = service
        self.config = transport
        self._server: asyncio.Server | None = None
        self._connections: set[_Connection] = set()
        self._draining = False

    # ------------------------------------------------------------ lifecycle
    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` (resolves ``port=0`` to the real one)."""
        if self._server is None or not self._server.sockets:
            raise RuntimeError("server is not started")
        host, port = self._server.sockets[0].getsockname()[:2]
        return str(host), int(port)

    async def start(self) -> FeatureServer:
        if self._server is not None:
            raise RuntimeError("server is already started")
        if not self.service.started or self.service.closed:
            raise ServiceClosedError("FeatureServer needs a started service")
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        return self

    async def stop(self) -> None:
        """Graceful drain: stop accepting, finish in-flight work, close."""
        if self._server is None:
            return
        self._draining = True
        self._server.close()
        await self._server.wait_closed()
        self._server = None
        for connection in list(self._connections):
            # In-flight request tasks answer their clients before the
            # socket closes; the read loop exits on its own at EOF.
            while connection.tasks:
                await asyncio.gather(
                    *list(connection.tasks), return_exceptions=True
                )
            with contextlib.suppress(Exception):
                connection.writer.close()
                await connection.writer.wait_closed()
        self._connections.clear()

    async def __aenter__(self) -> FeatureServer:
        return await self.start()

    async def __aexit__(self, *exc_info: object) -> None:
        await self.stop()

    # ------------------------------------------------------------ connection
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        connection = _Connection(reader, writer)
        self._connections.add(connection)
        try:
            while True:
                try:
                    frame = await read_frame(
                        reader, max_frame_bytes=self.config.max_frame_bytes
                    )
                except ProtocolError as exc:
                    # The stream position is untrustworthy past a framing
                    # error: answer once, then hang up.
                    with contextlib.suppress(Exception):
                        await connection.send(
                            {"type": "error", "id": None, "code": "protocol",
                             "message": str(exc)}
                        )
                    break
                if frame is None:
                    break  # client closed cleanly
                header, payload = frame
                await self._dispatch(connection, header, payload)
        finally:
            # A vanished client withdraws its outstanding requests: the
            # cancellation rides into service.submit, which discards each
            # still-queued request from its coalescing group.
            for task in list(connection.tasks):
                task.cancel()
            if connection.tasks:
                await asyncio.gather(*list(connection.tasks), return_exceptions=True)
            self._connections.discard(connection)
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _dispatch(
        self, connection: _Connection, header: dict[str, Any], payload: bytes
    ) -> None:
        kind = header["type"]
        if kind == "hello":
            await connection.send(
                {
                    "type": "welcome",
                    "version": PROTOCOL_VERSION,
                    "templates": {
                        name: self.service.template_info(name)
                        for name in self.service.templates()
                    },
                }
            )
            return
        if kind in ("submit", "predict"):
            task = asyncio.ensure_future(
                self._serve_request(connection, kind, header, payload)
            )
            connection.tasks.add(task)
            task.add_done_callback(connection.tasks.discard)
            return
        await connection.send(
            {
                "type": "error",
                "id": header.get("id"),
                "code": "bad_request",
                "message": f"unknown message type {kind!r}",
            }
        )

    # -------------------------------------------------------------- requests
    async def _serve_request(
        self,
        connection: _Connection,
        kind: str,
        header: dict[str, Any],
        payload: bytes,
    ) -> None:
        request_id = header.get("id")
        try:
            if self._draining:
                raise ServiceClosedError("server is draining; reconnect elsewhere")
            x = decode_array(header.get("array", {}), payload)
            tenant = str(header.get("tenant", "default"))
            # Tri-state seed: key absent = template default, null = fresh
            # entropy per call, int = that seed.
            seed = header["seed"] if "seed" in header else UNSET
            timeout_s = header.get("timeout_s", self.config.request_timeout_s)
            template = str(header.get("template", ""))
            if kind == "predict":
                result = await self.service.predict(
                    template, x, tenant=tenant, seed=seed, timeout_s=timeout_s
                )
                await self._send_result(
                    connection, request_id, template, result, stream=False
                )
            else:
                result = await self.service.submit(
                    template, x, tenant=tenant, seed=seed, timeout_s=timeout_s
                )
                await self._send_result(
                    connection,
                    request_id,
                    template,
                    result,
                    stream=bool(header.get("stream", False)),
                )
        except asyncio.CancelledError:
            raise
        except (ConnectionError, BrokenPipeError):
            pass  # the client is gone; nobody is listening for an answer
        except BaseException as exc:  # noqa: B036 - every failure answers the client
            error: dict[str, Any] = {
                "type": "error",
                "id": request_id,
                "code": _error_code(exc),
                "message": str(exc),
            }
            if isinstance(exc, RequestTimeoutError):
                error["template"] = exc.template
                error["tenant"] = exc.tenant
                error["timeout_s"] = exc.timeout_s
            with contextlib.suppress(Exception):
                await connection.send(error)

    async def _send_result(
        self,
        connection: _Connection,
        request_id: Any,
        template: str,
        result: np.ndarray,
        *,
        stream: bool,
    ) -> None:
        result = np.ascontiguousarray(result, dtype=np.float64)
        meta, payload = encode_array(result)
        single_frame = FRAME_OVERHEAD + _HEADER_SLACK + len(payload)
        threshold = self.config.stream_threshold_rows
        must_stream = single_frame > self.config.max_frame_bytes
        want_stream = stream or (
            threshold is not None and result.ndim == 2 and result.shape[0] > threshold
        )
        if result.ndim == 2 and self.config.streaming and (must_stream or want_stream):
            await self._stream_result(connection, request_id, template, result)
            return
        if must_stream:
            raise ProtocolError(
                f"response of {len(payload)} bytes exceeds max_frame_bytes="
                f"{self.config.max_frame_bytes} and streaming cannot carry it "
                f"(ndim={result.ndim}, streaming={self.config.streaming})"
            )
        await connection.send(
            {"type": "result", "id": request_id, "array": meta}, payload
        )

    async def _stream_result(
        self,
        connection: _Connection,
        request_id: Any,
        template: str,
        result: np.ndarray,
    ) -> None:
        """One ``block`` frame per (ansatz, chunk) slice, begin/end bracketed.

        Chunk rows follow the template's resolved chunk size -- the same
        block decomposition ``iter_feature_blocks`` yields -- further
        capped so every frame fits ``max_frame_bytes``.
        """
        k, cols = result.shape
        info = self.service.template_info(template)
        num_blocks, q = (int(d) for d in info["layout"])
        if num_blocks * q != cols:  # a head reshaped the output: one block
            num_blocks, q = 1, cols
        chunk = max(1, min(k, self._max_rows_per_frame(q), int(info["chunk_size"])))
        await connection.send(
            {"type": "begin", "id": request_id, "shape": [k, cols]}
        )
        for a in range(num_blocks):
            for lo, hi in chunk_ranges(k, chunk):
                block = np.ascontiguousarray(result[lo:hi, a * q : (a + 1) * q])
                meta, payload = encode_array(block)
                await connection.send(
                    {
                        "type": "block",
                        "id": request_id,
                        "ansatz": a,
                        "lo": lo,
                        "hi": hi,
                        "array": meta,
                    },
                    payload,
                )
        await connection.send({"type": "end", "id": request_id})

    def _max_rows_per_frame(self, cols: int) -> int:
        budget = self.config.max_frame_bytes - FRAME_OVERHEAD - _HEADER_SLACK
        return max(1, budget // (8 * max(1, cols)))


class _StreamState:
    """Client-side reassembly of one streamed response."""

    __slots__ = ("array", "filled")

    def __init__(self, shape: tuple[int, int]) -> None:
        self.array = np.empty(shape, dtype=np.float64)
        self.filled = 0

    def add(self, ansatz: int, lo: int, hi: int, block: np.ndarray) -> None:
        q = block.shape[1]
        self.array[lo:hi, ansatz * q : (ansatz + 1) * q] = block
        self.filled += block.size


class TcpTransport:
    """Client half of the wire protocol; a :class:`Transport` over TCP.

    Build with :meth:`connect`::

        transport = await TcpTransport.connect(host, port)
        client = FeatureClient(transport=transport, tenant="team-a")

    One transport multiplexes concurrent requests over one socket (ids
    route responses), so ``asyncio.gather`` over many submits coalesces
    server-side exactly like in-process callers.  Connection loss fails
    every pending request with :class:`ConnectionError`.
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        *,
        config: TransportConfig | None = None,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self.config = config if config is not None else TransportConfig()
        self._pending: dict[str, asyncio.Future] = {}
        self._streams: dict[str, _StreamState] = {}
        self._templates: dict[str, dict[str, Any]] = {}
        self._counter = 0
        self._closed = False
        self._read_task: asyncio.Task | None = None

    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        *,
        config: TransportConfig | None = None,
    ) -> TcpTransport:
        """Open a connection, handshake, and cache the template catalog."""
        reader, writer = await asyncio.open_connection(host, port)
        transport = cls(reader, writer, config=config)
        await transport._send({"type": "hello", "version": PROTOCOL_VERSION})
        frame = await read_frame(
            reader, max_frame_bytes=transport.config.max_frame_bytes
        )
        if frame is None:
            raise ConnectionError("server closed during handshake")
        header, _ = frame
        if header.get("type") == "error":
            _raise_for_code(
                str(header.get("code", "internal")),
                str(header.get("message", "handshake failed")),
                header,
            )
        if header.get("type") != "welcome":
            raise ProtocolError(f"expected welcome, got {header.get('type')!r}")
        transport._templates = dict(header.get("templates", {}))
        transport._read_task = asyncio.ensure_future(transport._read_loop())
        return transport

    # ------------------------------------------------------------- catalog
    def templates(self) -> tuple[str, ...]:
        return tuple(sorted(self._templates))

    def template_shape(self, name: str) -> tuple[int, int]:
        info = self._templates.get(name)
        if info is None:
            raise KeyError(
                f"unknown template {name!r}; served: {self.templates()}"
            )
        return int(info["rows"]), int(info["cols"])

    # ------------------------------------------------------------- requests
    async def submit(
        self,
        template: str,
        x: np.ndarray,
        *,
        tenant: str = "default",
        seed: Any = UNSET,
        timeout_s: float | None = None,
        stream: bool = False,
    ) -> np.ndarray:
        return await self._request(
            "submit", template, x, tenant, seed, timeout_s, stream
        )

    async def predict(
        self,
        template: str,
        x: np.ndarray,
        *,
        tenant: str = "default",
        seed: Any = UNSET,
        timeout_s: float | None = None,
    ) -> np.ndarray:
        return await self._request(
            "predict", template, x, tenant, seed, timeout_s, False
        )

    async def _request(
        self,
        kind: str,
        template: str,
        x: np.ndarray,
        tenant: str,
        seed: Any,
        timeout_s: float | None,
        stream: bool,
    ) -> np.ndarray:
        if self._closed:
            raise ConnectionError("transport is closed")
        self._counter += 1
        request_id = f"r{self._counter}"
        meta, payload = encode_array(np.asarray(x, dtype=float))
        header: dict[str, Any] = {
            "type": kind,
            "id": request_id,
            "template": template,
            "tenant": tenant,
            "array": meta,
        }
        if seed is not UNSET:
            header["seed"] = None if seed is None else int(seed)
        if timeout_s is not None:
            header["timeout_s"] = float(timeout_s)
        if stream:
            header["stream"] = True
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        try:
            await self._send(header, payload)
            return await future
        finally:
            self._pending.pop(request_id, None)
            self._streams.pop(request_id, None)

    async def _send(self, header: dict[str, Any], payload: bytes = b"") -> None:
        # Frames are single bytes objects: write() appends atomically on
        # the loop, so no lock is needed to keep frames contiguous.
        self._writer.write(pack_frame(header, payload))
        await self._writer.drain()

    # ------------------------------------------------------------- read loop
    async def _read_loop(self) -> None:
        error: BaseException = ConnectionError("server closed the connection")
        try:
            while True:
                frame = await read_frame(
                    self._reader, max_frame_bytes=self.config.max_frame_bytes
                )
                if frame is None:
                    break
                self._handle_frame(*frame)
        except asyncio.CancelledError:
            error = ConnectionError("transport closed")
        except BaseException as exc:  # noqa: B036 - fail pending, never die silent
            error = exc
        finally:
            self._fail_pending(error)

    def _handle_frame(self, header: dict[str, Any], payload: bytes) -> None:
        kind = header["type"]
        request_id = str(header.get("id"))
        future = self._pending.get(request_id)
        if kind == "result":
            if future is not None and not future.done():
                future.set_result(decode_array(header.get("array", {}), payload))
        elif kind == "begin":
            shape = tuple(int(d) for d in header.get("shape", ()))
            if len(shape) == 2:
                self._streams[request_id] = _StreamState((shape[0], shape[1]))
        elif kind == "block":
            state = self._streams.get(request_id)
            if state is not None:
                block = decode_array(header.get("array", {}), payload)
                state.add(
                    int(header["ansatz"]), int(header["lo"]), int(header["hi"]), block
                )
        elif kind == "end":
            state = self._streams.pop(request_id, None)
            if future is not None and not future.done():
                if state is None or state.filled != state.array.size:
                    future.set_exception(
                        ProtocolError(
                            f"incomplete stream for request {request_id!r}"
                        )
                    )
                else:
                    future.set_result(state.array)
        elif kind == "error":
            if future is not None and not future.done():
                try:
                    _raise_for_code(
                        str(header.get("code", "internal")),
                        str(header.get("message", "request failed")),
                        header,
                    )
                except BaseException as exc:  # noqa: B036 - typed re-raise
                    future.set_exception(exc)
            elif header.get("id") is None:
                # Connection-scoped error (protocol violation): fatal.
                raise ProtocolError(str(header.get("message", "protocol error")))

    def _fail_pending(self, error: BaseException) -> None:
        for future in self._pending.values():
            if not future.done():
                future.set_exception(
                    ConnectionError(f"connection lost: {error}")
                )
        self._pending.clear()
        self._streams.clear()

    # ------------------------------------------------------------- lifecycle
    async def aclose(self) -> None:
        """Close the socket and fail anything still pending."""
        if self._closed:
            return
        self._closed = True
        if self._read_task is not None:
            self._read_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._read_task
        with contextlib.suppress(Exception):
            self._writer.close()
            await self._writer.wait_closed()
        self._fail_pending(ConnectionError("transport closed"))

    async def __aenter__(self) -> TcpTransport:
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.aclose()
