"""Parallel execution backends for circuit-ensemble fan-out.

One interface, three backends:

* ``serial``  -- plain loop (reference semantics, zero overhead);
* ``thread``  -- ``ThreadPoolExecutor``: effective here because the simulator
  kernels spend their time inside NumPy (GIL released in BLAS/einsum);
* ``process`` -- ``ProcessPoolExecutor`` for CPU-bound Python-heavy tasks
  (task callables must be picklable module-level functions).

Since the runtime refactor, :class:`ParallelExecutor` is a thin facade over
a *persistent* :class:`repro.hpc.runtime.ExecutionRuntime`: the worker pool
is created lazily on first use and reused across every subsequent ``map``
(every ``fit``/``predict`` sweep), instead of being rebuilt per call.
Release it explicitly with ``close()`` or by using the executor as a
context manager; idle pools are otherwise reaped at interpreter exit.

Results preserve task order regardless of completion order, so all backends
are bit-for-bit interchangeable -- the property the tests pin down.
"""

from __future__ import annotations

import threading
from collections.abc import Callable, Sequence
from typing import Any

from repro.hpc.runtime import ExecutionRuntime, ExecutorConfig

__all__ = ["ParallelExecutor", "ExecutorConfig"]


class ParallelExecutor:
    """Order-preserving parallel ``map`` over a persistent worker pool."""

    def __init__(
        self,
        backend: str = "serial",
        max_workers: int | str | None = 1,
        start_method: str | None = None,
    ):
        self.config = ExecutorConfig(
            backend=backend, max_workers=max_workers, start_method=start_method
        )
        self._runtime: ExecutionRuntime | None = None
        self._lock = threading.Lock()

    @property
    def backend(self) -> str:
        return self.config.backend

    @property
    def max_workers(self) -> int:
        return self.config.max_workers  # type: ignore[return-value]

    @property
    def runtime(self) -> ExecutionRuntime:
        """The long-lived runtime backing this executor (created lazily).

        A fresh runtime is built transparently if the previous one was
        closed, so an executor stays usable after ``close()``.  Creation is
        locked: the facade may be shared across threads without racing two
        pools into existence.
        """
        with self._lock:
            if self._runtime is None or self._runtime.closed:
                self._runtime = ExecutionRuntime(config=self.config)
            return self._runtime

    def map(self, fn: Callable[[Any], Any], tasks: Sequence[Any]) -> list[Any]:
        """Apply ``fn`` to every task; results ordered like ``tasks``."""
        return self.runtime.map(fn, list(tasks))

    def starmap(self, fn: Callable[..., Any], tasks: Sequence[tuple]) -> list[Any]:
        """``map`` with argument tuples unpacked."""
        return self.map(lambda args: fn(*args), list(tasks)) \
            if self.config.backend != "process" \
            else self.map(_Star(fn), list(tasks))

    def close(self, wait: bool = True) -> None:
        """Shut the underlying pool down (a later call recreates it)."""
        with self._lock:
            runtime, self._runtime = self._runtime, None
        if runtime is not None:
            runtime.shutdown(wait=wait)

    def __enter__(self) -> ParallelExecutor:
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ParallelExecutor({self.config.backend}, workers={self.config.max_workers})"


class _Star:
    """Picklable star-unpacking wrapper for the process backend."""

    def __init__(self, fn: Callable[..., Any]):
        self.fn = fn

    def __call__(self, args: tuple) -> Any:
        return self.fn(*args)
