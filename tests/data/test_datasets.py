"""Dataset split tests."""

import numpy as np
import pytest

from repro.data.datasets import (
    binary_coat_vs_shirt,
    multiclass_fashion,
    train_test_split,
)


def test_binary_split_shapes():
    sp = binary_coat_vs_shirt(train_per_class=10, test_per_class=5)
    assert sp.x_train.shape == (20, 4, 4)
    assert sp.x_test.shape == (10, 4, 4)
    assert sp.num_train == 20 and sp.num_test == 10
    assert set(np.unique(sp.y_train)) == {0, 1}
    assert sp.class_names == ("coat", "shirt")


def test_binary_split_balanced():
    sp = binary_coat_vs_shirt(train_per_class=15, test_per_class=5)
    assert np.sum(sp.y_train == 0) == 15
    assert np.sum(sp.y_test == 1) == 5


def test_angles_in_range():
    sp = binary_coat_vs_shirt(train_per_class=10, test_per_class=5)
    for arr in (sp.x_train, sp.x_test):
        assert arr.min() >= 0.0
        assert arr.max() < 2 * np.pi


def test_test_scaling_uses_train_statistics():
    """No leakage: the angle map is fit on train only, so test values are
    clipped into the train range rather than rescaled to their own."""
    sp = binary_coat_vs_shirt(train_per_class=30, test_per_class=10)
    # Train attains (near) 0 and the (near) max angle; test need not.
    assert sp.x_train.min() == pytest.approx(0.0, abs=1e-9)
    assert sp.x_train.max() == pytest.approx(2 * np.pi, rel=1e-6)


def test_determinism():
    a = binary_coat_vs_shirt(train_per_class=5, test_per_class=2, seed=3)
    b = binary_coat_vs_shirt(train_per_class=5, test_per_class=2, seed=3)
    assert np.array_equal(a.x_train, b.x_train)
    assert np.array_equal(a.y_test, b.y_test)


def test_multiclass_split():
    sp = multiclass_fashion(train_total=40, test_total=20)
    assert sp.x_train.shape == (40, 4, 4)
    assert len(np.unique(sp.y_train)) == 10
    counts = np.bincount(sp.y_train, minlength=10)
    assert np.all(counts == 4)


def test_multiclass_divisibility_validation():
    with pytest.raises(ValueError):
        multiclass_fashion(train_total=45, test_total=20)


def test_train_test_split():
    rng = np.random.default_rng(0)
    x = rng.normal(size=(100, 3))
    y = np.arange(100)
    xtr, ytr, xte, yte = train_test_split(x, y, 0.25, seed=1)
    assert xtr.shape == (75, 3) and xte.shape == (25, 3)
    assert sorted(np.concatenate([ytr, yte]).tolist()) == list(range(100))
    with pytest.raises(ValueError):
        train_test_split(x, y, 0.0)
