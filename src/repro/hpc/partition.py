"""Partitioning of task grids across workers.

The post-variational workload is a dense grid of independent tasks:
``(shift configuration a, data chunk c)`` pairs, each producing a block of
the Q matrix.  These helpers split index ranges in the standard HPC ways and
are shared by the executor (real parallelism), the scheduler (assignment
policies) and the cluster model (simulated timing).
"""

from __future__ import annotations

import numpy as np

__all__ = ["block_partition", "cyclic_partition", "chunk_ranges", "balanced_cost_partition"]


def block_partition(num_items: int, num_parts: int) -> list[np.ndarray]:
    """Contiguous near-equal blocks (sizes differ by at most one).

    Ranks 0..(num_items % num_parts - 1) get the larger blocks, matching
    MPI folklore layouts so per-rank offsets are computable in O(1).
    """
    if num_parts < 1:
        raise ValueError("num_parts must be >= 1")
    if num_items < 0:
        raise ValueError("num_items must be >= 0")
    base, extra = divmod(num_items, num_parts)
    parts = []
    start = 0
    for r in range(num_parts):
        size = base + (1 if r < extra else 0)
        parts.append(np.arange(start, start + size))
        start += size
    return parts


def cyclic_partition(num_items: int, num_parts: int) -> list[np.ndarray]:
    """Round-robin assignment: item i -> part i mod num_parts.

    Better load balance when per-item cost drifts monotonically (e.g. shift
    configurations ordered by derivative order get steadily cheaper after
    transpilation).
    """
    if num_parts < 1:
        raise ValueError("num_parts must be >= 1")
    return [np.arange(r, num_items, num_parts) for r in range(num_parts)]


def chunk_ranges(num_items: int, chunk_size: int) -> list[tuple[int, int]]:
    """Split ``range(num_items)`` into [start, stop) chunks of given size."""
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    return [(s, min(s + chunk_size, num_items)) for s in range(0, num_items, chunk_size)]


def balanced_cost_partition(costs: np.ndarray, num_parts: int) -> list[np.ndarray]:
    """Greedy LPT partition by per-item cost.

    Sorts items by decreasing cost and assigns each to the currently
    lightest part -- the classic 4/3-approximation to makespan.  Returns
    item-index arrays per part.
    """
    costs = np.asarray(costs, dtype=float)
    if num_parts < 1:
        raise ValueError("num_parts must be >= 1")
    if np.any(costs < 0):
        raise ValueError("costs must be non-negative")
    order = np.argsort(-costs, kind="stable")
    loads = np.zeros(num_parts)
    assignment: list[list[int]] = [[] for _ in range(num_parts)]
    for idx in order:
        part = int(np.argmin(loads))
        assignment[part].append(int(idx))
        loads[part] += costs[idx]
    return [np.array(sorted(a), dtype=int) for a in assignment]
