"""Batched statevector simulator.

The hot loop of the post-variational method evaluates the *same* fixed
circuit on *every* data point (paper Algorithm 1: ``Q_ij = <0|S(x_i)^dag
U(theta_j)^dag O_j U(theta_j) S(x_i)|0>``).  Following the HPC guideline of
vectorising the innermost loops, states are stored as ``(batch, 2**n)``
complex arrays and every gate is applied to the whole batch with a single
einsum -- one BLAS-grade operation per gate instead of ``batch`` Python-level
circuit executions.

Conventions
-----------
* Qubit 0 is the most significant bit of a computational-basis index.
* States are C-contiguous ``complex128``; kernels preserve contiguity
  (cache-friendliness per the optimisation guide).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.quantum.circuit import Circuit
from repro.quantum.gates import gate_matrix
from repro.utils.rng import as_rng
from repro.utils.validation import check_power_of_two

__all__ = [
    "zero_state",
    "basis_state",
    "apply_matrix",
    "apply_matrix_batch",
    "run_circuit",
    "probabilities",
    "sample_counts",
    "fidelity",
    "StatevectorSimulator",
]


def zero_state(num_qubits: int, batch: int | None = None) -> np.ndarray:
    """Return |0...0> as shape ``(2**n,)`` or ``(batch, 2**n)``."""
    dim = 2**num_qubits
    if batch is None:
        state = np.zeros(dim, dtype=np.complex128)
        state[0] = 1.0
    else:
        state = np.zeros((batch, dim), dtype=np.complex128)
        state[:, 0] = 1.0
    return state


def basis_state(num_qubits: int, index: int) -> np.ndarray:
    """Return the computational basis state |index>."""
    dim = 2**num_qubits
    if not 0 <= index < dim:
        raise ValueError(f"basis index {index} out of range for {num_qubits} qubits")
    state = np.zeros(dim, dtype=np.complex128)
    state[index] = 1.0
    return state


def _as_batch(state: np.ndarray) -> tuple[np.ndarray, bool]:
    """View ``state`` as (batch, dim); report whether input was unbatched."""
    if state.ndim == 1:
        return state[None, :], True
    if state.ndim == 2:
        return state, False
    raise ValueError(f"state must be 1-D or 2-D, got ndim={state.ndim}")


def apply_matrix(
    state: np.ndarray, matrix: np.ndarray, qubits: Sequence[int]
) -> np.ndarray:
    """Apply a k-qubit unitary ``matrix`` to ``qubits`` of ``state``.

    Works on single states and batches; returns a new array.  The kernel
    reshapes the batch into ``(batch, left, 2, mid, 2, right, ...)`` blocks
    around the target axes and contracts with one einsum.
    """
    batch, squeeze = _as_batch(np.asarray(state, dtype=np.complex128))
    out = apply_matrix_batch(batch, matrix, qubits)
    return out[0] if squeeze else out


def apply_matrix_batch(
    states: np.ndarray, matrix: np.ndarray, qubits: Sequence[int], *, xp=None
) -> np.ndarray:
    """Batched unitary application; ``states`` must be ``(batch, 2**n)``.

    ``matrix`` may be ``(2**k, 2**k)`` (shared across the batch) or
    ``(batch, 2**k, 2**k)`` (a distinct matrix per batch element -- used by
    data-encoding layers where each sample carries its own rotation angle).

    ``xp`` selects the array namespace (:mod:`repro.xp`).  ``None`` -- or a
    native NumPy namespace -- runs the original NumPy body unchanged
    (bit-identical); any other namespace runs the same contraction through
    that library's ops, and inputs/outputs stay on its device.
    """
    if xp is None or xp.native:
        states = np.ascontiguousarray(states, dtype=np.complex128)
        b, dim = states.shape
        n = check_power_of_two(dim, "state dimension")
        qubits = [int(q) for q in qubits]
        k = len(qubits)
        if len(set(qubits)) != k:
            raise ValueError(f"duplicate qubits {qubits}")
        for q in qubits:
            if not 0 <= q < n:
                raise ValueError(f"qubit {q} out of range for n={n}")
        matrix = np.asarray(matrix, dtype=np.complex128)
        per_sample = matrix.ndim == 3
        expected = (b, 2**k, 2**k) if per_sample else (2**k, 2**k)
        if matrix.shape != expected:
            raise ValueError(f"matrix shape {matrix.shape} != expected {expected}")

        # Move target qubit axes to the front (after batch), apply, move back.
        tensor = states.reshape((b,) + (2,) * n)
        src = [1 + q for q in qubits]
        dst = list(range(1, 1 + k))
        tensor = np.moveaxis(tensor, src, dst)
        rest = tensor.shape[1 + k :]
        tensor = tensor.reshape(b, 2**k, -1)
        spec = "bij,bjr->bir" if per_sample else "ij,bjr->bir"
        tensor = np.einsum(spec, matrix, tensor)
        tensor = tensor.reshape((b,) + (2,) * k + rest)
        tensor = np.moveaxis(tensor, dst, src)
        return np.ascontiguousarray(tensor.reshape(b, dim))

    # Generic device path: identical contraction, the namespace's ops.
    states = xp.ascomplex(states)
    b, dim = (int(s) for s in states.shape)
    n = check_power_of_two(dim, "state dimension")
    qubits = [int(q) for q in qubits]
    k = len(qubits)
    if len(set(qubits)) != k:
        raise ValueError(f"duplicate qubits {qubits}")
    for q in qubits:
        if not 0 <= q < n:
            raise ValueError(f"qubit {q} out of range for n={n}")
    matrix = xp.ascomplex(matrix)
    per_sample = matrix.ndim == 3
    expected = (b, 2**k, 2**k) if per_sample else (2**k, 2**k)
    if tuple(matrix.shape) != expected:
        raise ValueError(f"matrix shape {tuple(matrix.shape)} != expected {expected}")
    tensor = states.reshape((b,) + (2,) * n)
    src = [1 + q for q in qubits]
    dst = list(range(1, 1 + k))
    tensor = xp.moveaxis(tensor, src, dst)
    rest = tuple(tensor.shape[1 + k :])
    tensor = tensor.reshape(b, 2**k, -1)
    spec = "bij,bjr->bir" if per_sample else "ij,bjr->bir"
    tensor = xp.einsum(spec, matrix, tensor)
    tensor = tensor.reshape((b,) + (2,) * k + rest)
    tensor = xp.moveaxis(tensor, dst, src)
    return xp.ascontiguous(tensor.reshape(b, dim))


def run_circuit(
    circuit: Circuit,
    state: np.ndarray | None = None,
    params: Sequence[float] | None = None,
    compile: str | int = "off",
) -> np.ndarray:
    """Evolve ``state`` (default |0..0>) through ``circuit``.

    Unbound circuits require ``params``.  ``state`` may be a batch; the same
    bound circuit is applied to every batch element.

    ``compile`` selects the execution engine: ``"off"`` walks the gate list
    (one einsum per gate, the reference semantics), ``"auto"`` or an int
    ``k >= 1`` routes through :func:`repro.quantum.compile.compile_circuit`
    -- gates are fused into blocks of support <= k and the compiled program
    is cached, so repeated calls on the same bound circuit skip straight to
    the fused kernels.
    """
    if not circuit.is_bound:
        if params is None:
            raise ValueError(f"circuit has {circuit.num_parameters} unbound parameters")
        circuit = circuit.bind(params)
    elif params is not None and len(params) != 0:
        raise ValueError("params given for an already-bound circuit")
    if state is None:
        state = zero_state(circuit.num_qubits)
    batch, squeeze = _as_batch(np.asarray(state, dtype=np.complex128))
    if batch.shape[1] != 2**circuit.num_qubits:
        raise ValueError(
            f"state dim {batch.shape[1]} incompatible with {circuit.num_qubits} qubits"
        )
    if compile != "off" and compile is not None:
        # Imported here: repro.quantum.compile itself builds on this module.
        from repro.quantum.compile import compile_circuit

        batch = compile_circuit(circuit, max_width=compile).apply(batch)
        return batch[0] if squeeze else batch
    for op in circuit:
        batch = apply_matrix_batch(batch, gate_matrix(op.gate, op.param), op.qubits)
    return batch[0] if squeeze else batch


def probabilities(state: np.ndarray) -> np.ndarray:
    """Born-rule outcome probabilities, batched along with the input."""
    return np.abs(np.asarray(state)) ** 2


def sample_counts(
    state: np.ndarray, shots: int, seed: int | np.random.Generator | None = None
) -> np.ndarray:
    """Sample measurement outcomes; returns counts of length ``dim``.

    For batched input returns shape ``(batch, dim)``.
    """
    if shots < 0:
        raise ValueError(f"shots={shots} must be >= 0")
    rng = as_rng(seed)
    batch, squeeze = _as_batch(np.asarray(state))
    probs = probabilities(batch)
    probs = probs / probs.sum(axis=1, keepdims=True)
    # One batched multinomial call: the per-row loop moves into NumPy's C
    # layer, which draws the same conditional binomials in the same order as
    # sequential per-row calls -- the seed-determinism contract the tests pin.
    counts = rng.multinomial(shots, probs)
    return counts[0] if squeeze else counts


def fidelity(state_a: np.ndarray, state_b: np.ndarray) -> np.ndarray | float:
    """Pure-state fidelity ``|<a|b>|^2`` (batched elementwise)."""
    a, squeeze_a = _as_batch(np.asarray(state_a, dtype=np.complex128))
    b, squeeze_b = _as_batch(np.asarray(state_b, dtype=np.complex128))
    overlap = np.abs(np.einsum("bi,bi->b", a.conj(), b)) ** 2
    return float(overlap[0]) if (squeeze_a and squeeze_b) else overlap


#: Sentinel distinguishing "use the simulator's configured engine" from an
#: explicit ``compile=None`` (which, like ``"off"``, means no compilation).
_INSTANCE_DEFAULT: str = "__instance_default__"


class StatevectorSimulator:
    """Object-style front end over the functional kernels.

    Keeps an explicit ``num_qubits`` so that mixed-width circuits are caught
    early, and offers the expectation-value entry point the estimation layers
    build on.  ``compile`` sets the default execution engine for every
    :meth:`run` (overridable per call); see :func:`run_circuit`.
    """

    def __init__(self, num_qubits: int, compile: str | int = "off"):
        if num_qubits < 1:
            raise ValueError("num_qubits must be >= 1")
        from repro.quantum.compile import resolve_fusion_width

        resolve_fusion_width(compile)  # validate the knob eagerly
        self.num_qubits = int(num_qubits)
        self.dim = 2**self.num_qubits
        self.compile = compile

    def run(
        self,
        circuit: Circuit,
        state: np.ndarray | None = None,
        params: Sequence[float] | None = None,
        compile: str | int | None = _INSTANCE_DEFAULT,
    ) -> np.ndarray:
        """Evolve ``state`` through ``circuit`` (see :func:`run_circuit`).

        ``compile`` defaults to the instance-wide engine; pass ``"off"``
        (or ``None``, per the :func:`run_circuit` contract) to force the
        naive reference engine for one call.
        """
        if circuit.num_qubits != self.num_qubits:
            raise ValueError(
                f"circuit acts on {circuit.num_qubits} qubits, simulator on {self.num_qubits}"
            )
        engine = self.compile if compile is _INSTANCE_DEFAULT else compile
        return run_circuit(circuit, state=state, params=params, compile=engine)

    def expectation(self, state: np.ndarray, observable) -> np.ndarray | float:
        """``<state|observable|state>`` for a PauliString/PauliSum/matrix.

        Delegates to :func:`repro.quantum.observables.expectation`; accepts
        batches.
        """
        from repro.quantum.observables import expectation

        return expectation(state, observable)
