"""In-process SPMD communicator with mpi4py-style semantics.

The SC-track system runs its ensemble dispatch over MPI.  This module
reproduces the mpi4py programming model -- ``Get_rank``/``Get_size``,
point-to-point ``send``/``recv``/``isend``/``irecv`` and the collectives
``bcast``/``scatter``/``gather``/``allgather``/``alltoall``/``reduce``/
``allreduce``/``barrier`` -- inside one Python process using threads and
queues.  Programs written against :class:`Communicator` follow the same
rank-based structure as their mpi4py equivalents (see the guide's tutorial
examples, which the tests mirror), so porting to a real cluster is a
one-line import swap.

Two API layers mirror mpi4py's convention:

* lowercase (``send``/``recv``/...) -- arbitrary Python objects;
* capitalised (``Send``/``Recv``/``Bcast``/``Allreduce``) -- NumPy buffers,
  received *into* a caller-provided array (zero-copy discipline).
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass
from collections.abc import Callable, Sequence
from typing import Any

import numpy as np

__all__ = ["Communicator", "Request", "run_spmd", "SpmdError"]

ANY_SOURCE = -1

#: How often a blocked ``recv`` re-checks the world's abort flag.  Small
#: enough that a peer failure surfaces promptly, large enough that polling
#: is invisible next to any real slab exchange.
_ABORT_POLL_SECONDS = 0.02


class SpmdError(RuntimeError):
    """Raised when a rank raises; carries all per-rank exceptions."""

    def __init__(self, failures: dict[int, BaseException]):
        self.failures = failures
        detail = "; ".join(f"rank {r}: {e!r}" for r, e in sorted(failures.items()))
        super().__init__(f"SPMD execution failed on {len(failures)} rank(s): {detail}")


class _World:
    """Shared state for one SPMD execution: mailboxes and barriers."""

    def __init__(self, size: int):
        self.size = size
        # One mailbox per (destination, tag-agnostic); messages carry
        # (source, tag, payload) and receivers filter.
        self.mailboxes: list[queue.Queue] = [queue.Queue() for _ in range(size)]
        self.barrier = threading.Barrier(size)
        # Set when any rank fails: collectives are released via
        # ``barrier.abort()``, point-to-point receivers poll this flag.
        self.aborted = threading.Event()
        # Collective staging area, reallocated per collective via a lock +
        # generation counter.
        self.lock = threading.Lock()
        self.staging: dict[str, list[Any]] = {}
        self.generation: dict[str, int] = {}


@dataclass
class Request:
    """Handle for a non-blocking operation (mpi4py ``isend``/``irecv``)."""

    _result: Callable[[], Any]
    _done: threading.Event

    def wait(self) -> Any:
        """Block until completion; returns the received object (or None)."""
        self._done.wait()
        return self._result()

    def test(self) -> tuple[bool, Any]:
        """Non-blocking completion probe: (flag, value-or-None)."""
        if self._done.is_set():
            return True, self._result()
        return False, None


class Communicator:
    """A rank's endpoint in the simulated world.

    All collectives are synchronising (every rank must call them in the same
    order -- the MPI contract); mismatched calls deadlock just as real MPI
    would, so tests exercise the contract honestly.
    """

    def __init__(self, world: _World, rank: int):
        self._world = world
        self._rank = rank
        self._pending: list[tuple[int, int, Any]] = []  # out-of-order stash

    # ----------------------------------------------------------- identity
    def Get_rank(self) -> int:
        return self._rank

    def Get_size(self) -> int:
        return self._world.size

    @property
    def rank(self) -> int:
        return self._rank

    @property
    def size(self) -> int:
        return self._world.size

    # ----------------------------------------------------- point-to-point
    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Blocking-send semantics (buffered: enqueue and return)."""
        if not 0 <= dest < self._world.size:
            raise ValueError(f"dest={dest} out of range")
        self._world.mailboxes[dest].put((self._rank, tag, obj))

    def recv(self, source: int = ANY_SOURCE, tag: int = 0) -> Any:
        """Blocking receive matching ``source`` (or any) and ``tag``.

        Abort-aware: when a peer rank fails, :func:`run_spmd` sets the
        world's abort flag, and a rank blocked here raises
        :class:`threading.BrokenBarrierError` (the same release signal
        collectives get from ``barrier.abort()``) instead of sleeping until
        the SPMD timeout.  Messages already in flight are still drained
        first, so a send that raced the failure is not lost.
        """
        # First scan the stash for an already-delivered match.
        for i, (src, t, obj) in enumerate(self._pending):
            if (source in (ANY_SOURCE, src)) and t == tag:
                del self._pending[i]
                return obj
        while True:
            try:
                src, t, obj = self._world.mailboxes[self._rank].get(
                    timeout=_ABORT_POLL_SECONDS
                )
            except queue.Empty:
                if self._world.aborted.is_set():
                    raise threading.BrokenBarrierError(
                        f"rank {self._rank}: a peer rank failed while this "
                        f"rank was blocked in recv(source={source}, tag={tag})"
                    ) from None
                continue
            if (source in (ANY_SOURCE, src)) and t == tag:
                return obj
            self._pending.append((src, t, obj))

    def isend(self, obj: Any, dest: int, tag: int = 0) -> Request:
        """Non-blocking send; completion is immediate (buffered)."""
        self.send(obj, dest, tag)
        done = threading.Event()
        done.set()
        return Request(_result=lambda: None, _done=done)

    def irecv(self, source: int = ANY_SOURCE, tag: int = 0) -> Request:
        """Non-blocking receive; ``wait()`` performs the blocking match."""
        done = threading.Event()
        box: dict[str, Any] = {}

        def _resolve() -> Any:
            return box["value"]

        def _worker() -> None:
            box["value"] = self.recv(source, tag)
            done.set()

        threading.Thread(target=_worker, daemon=True).start()
        return Request(_result=_resolve, _done=done)

    # NumPy-buffer layer -----------------------------------------------
    def Send(self, array: np.ndarray, dest: int, tag: int = 0) -> None:
        """Buffer send: ships a copy so the sender may reuse its array."""
        self.send(np.array(array, copy=True), dest, tag)

    def Recv(self, out: np.ndarray, source: int = ANY_SOURCE, tag: int = 0) -> None:
        """Buffer receive *into* ``out`` (shape/dtype must be compatible)."""
        data = self.recv(source, tag)
        np.copyto(out, data)

    # ---------------------------------------------------------- collectives
    def barrier(self) -> None:
        """Synchronise all ranks."""
        self._world.barrier.wait()

    def _staged(self, op: str, contribution: Any) -> list[Any]:
        """Deposit ``contribution`` and return all ranks' contributions.

        Implements the rendezvous every collective reduces to: a shared
        list indexed by rank, fenced by two barriers.
        """
        world = self._world
        with world.lock:
            if op not in world.staging or len(world.staging[op]) != world.size:
                world.staging[op] = [None] * world.size
            world.staging[op][self._rank] = contribution
        world.barrier.wait()
        values = list(world.staging[op])
        world.barrier.wait()  # ensure all read before next collective reuses
        return values

    def bcast(self, obj: Any, root: int = 0) -> Any:
        """Broadcast ``obj`` from ``root`` to every rank."""
        values = self._staged("bcast", obj if self._rank == root else None)
        return values[root]

    def Bcast(self, array: np.ndarray, root: int = 0) -> None:
        """Buffer broadcast in place."""
        data = self.bcast(np.array(array, copy=True) if self._rank == root else None, root)
        if self._rank != root:
            np.copyto(array, data)

    def scatter(self, sendobj: Sequence[Any] | None, root: int = 0) -> Any:
        """Root supplies one item per rank; each rank gets its item."""
        if self._rank == root and (
            sendobj is None or len(sendobj) != self._world.size
        ):
            raise ValueError("scatter requires size items at root")
        items = self.bcast(list(sendobj) if self._rank == root else None, root)
        return items[self._rank]

    def gather(self, obj: Any, root: int = 0) -> list[Any] | None:
        """Inverse of scatter: root receives a list indexed by rank."""
        values = self._staged("gather", obj)
        return values if self._rank == root else None

    def allgather(self, obj: Any) -> list[Any]:
        """Gather to every rank."""
        return self._staged("allgather", obj)

    def alltoall(self, sendobj: Sequence[Any]) -> list[Any]:
        """Personalised exchange: item j of rank i reaches slot i of rank j."""
        if len(sendobj) != self._world.size:
            raise ValueError("alltoall requires size items")
        matrix = self._staged("alltoall", list(sendobj))
        return [matrix[src][self._rank] for src in range(self._world.size)]

    def reduce(
        self, obj: Any, op: Callable[[Any, Any], Any] | None = None, root: int = 0
    ) -> Any:
        """Reduce with ``op`` (default elementwise +) onto ``root``."""
        values = self._staged("reduce", obj)
        if self._rank != root:
            return None
        return _fold(values, op)

    def allreduce(self, obj: Any, op: Callable[[Any, Any], Any] | None = None) -> Any:
        """Reduce with result available on every rank."""
        values = self._staged("allreduce", obj)
        return _fold(values, op)

    def Allreduce(self, send: np.ndarray, recv: np.ndarray, op=None) -> None:
        """Buffer allreduce into ``recv``."""
        result = self.allreduce(np.array(send, copy=True), op)
        np.copyto(recv, result)


def _fold(values: list[Any], op: Callable[[Any, Any], Any] | None) -> Any:
    if op is None:
        op = lambda a, b: a + b  # noqa: E731 - mpi4py SUM default
    acc = values[0]
    for v in values[1:]:
        acc = op(acc, v)
    return acc


def run_spmd(
    fn: Callable[[Communicator], Any], size: int, timeout: float | None = 60.0
) -> list[Any]:
    """Run ``fn(comm)`` on ``size`` ranks; return per-rank results.

    The SPMD analogue of ``mpiexec -n size python script.py``.  Exceptions on
    any rank are collected and re-raised as :class:`SpmdError` after all
    threads finish (a hung collective surfaces as a timeout).
    """
    if size < 1:
        raise ValueError("size must be >= 1")
    world = _World(size)
    results: list[Any] = [None] * size
    failures: dict[int, BaseException] = {}

    def _runner(rank: int) -> None:
        try:
            results[rank] = fn(Communicator(world, rank))
        except BaseException as exc:  # noqa: BLE001 - reported to caller
            failures[rank] = exc
            world.aborted.set()  # release peers stuck in point-to-point recv
            world.barrier.abort()  # release peers stuck in collectives

    threads = [
        threading.Thread(target=_runner, args=(r,), daemon=True) for r in range(size)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout)
        if t.is_alive():
            raise TimeoutError("SPMD ranks did not finish (deadlock?)")
    if failures:
        # Broken-barrier errors on peer ranks are a side effect of the abort.
        primary = {
            r: e for r, e in failures.items() if not isinstance(e, threading.BrokenBarrierError)
        }
        raise SpmdError(primary or failures)
    return results
