"""Shift-configuration enumeration for the Ansatz-expansion strategy.

Paper Sec. IV.A: "truncating at the R-th derivative order, ... we simply
select all combinations of size <= L from the k parameters in theta, where
each parameter corresponds to a single rotational gate, and set each
parameter to +-pi/2."  Eq. 16 counts ``sum_{l<=R} C(k,l) 2^l`` circuits.

The enumeration order is deterministic (derivative order, then parameter
subset lexicographic, then sign pattern with + before -) and fixes the
feature-column order of the Q matrix.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.combinatorics import bounded_subsets, count_bounded_subsets, signed_assignments

__all__ = ["ShiftConfiguration", "enumerate_shift_configurations", "count_shift_configurations"]

_SHIFT = np.pi / 2


@dataclass(frozen=True)
class ShiftConfiguration:
    """One fixed Ansatz instance: parameters shifted on a subset.

    ``subset``/``signs`` describe which parameters are at +-pi/2; ``order``
    is the derivative order this circuit contributes to (= len(subset)).
    """

    subset: tuple[int, ...]
    signs: tuple[int, ...]
    num_parameters: int

    @property
    def order(self) -> int:
        return len(self.subset)

    def vector(self, base: np.ndarray | None = None) -> np.ndarray:
        """The concrete parameter vector: ``base`` (default zeros) with the
        subset entries shifted by ``sign * pi/2``."""
        theta = (
            np.zeros(self.num_parameters)
            if base is None
            else np.array(base, dtype=float, copy=True)
        )
        if theta.shape != (self.num_parameters,):
            raise ValueError("base vector length mismatch")
        for index, sign in zip(self.subset, self.signs, strict=True):
            theta[index] += sign * _SHIFT
        return theta

    @property
    def label(self) -> str:
        """Human-readable tag, e.g. ``d2[+3,-5]`` (used in traces/reports)."""
        if not self.subset:
            return "d0[]"
        inner = ",".join(
            f"{'+' if s > 0 else '-'}{i}" for i, s in zip(self.subset, self.signs, strict=True)
        )
        return f"d{self.order}[{inner}]"


def enumerate_shift_configurations(
    num_parameters: int, max_order: int
) -> list[ShiftConfiguration]:
    """All configurations of derivative order 0..max_order (Eq. 16 set)."""
    if num_parameters < 0:
        raise ValueError("num_parameters must be >= 0")
    if max_order < 0:
        raise ValueError("max_order must be >= 0")
    configs: list[ShiftConfiguration] = []
    for subset in bounded_subsets(num_parameters, max_order):
        for signs in signed_assignments(subset, (1, -1)):
            configs.append(
                ShiftConfiguration(
                    subset=tuple(subset), signs=tuple(signs), num_parameters=num_parameters
                )
            )
    return configs


def count_shift_configurations(num_parameters: int, max_order: int) -> int:
    """Closed form of paper Eq. 16: ``sum_{l<=R} C(k,l) 2^l``."""
    return count_bounded_subsets(num_parameters, max_order, 2)
