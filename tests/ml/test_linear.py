"""Linear / ridge regression tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.linear import LinearRegression, RidgeRegression, lstsq_pinv


def test_pinv_matches_numpy_lstsq():
    rng = np.random.default_rng(0)
    q = rng.normal(size=(40, 6))
    y = rng.normal(size=40)
    ours = lstsq_pinv(q, y)
    ref, *_ = np.linalg.lstsq(q, y, rcond=None)
    assert np.allclose(ours, ref)


@given(seed=st.integers(0, 2**31 - 1))
@settings(max_examples=30, deadline=None)
def test_exact_recovery(seed):
    rng = np.random.default_rng(seed)
    q = rng.normal(size=(50, 5))
    alpha = rng.normal(size=5)
    model = LinearRegression().fit(q, q @ alpha)
    assert np.allclose(model.coef_, alpha, atol=1e-8)
    assert model.loss(q, q @ alpha) == pytest.approx(0.0, abs=1e-9)


def test_normal_equations_optimality():
    """Residual orthogonal to column space: Q^T (y - Q a) = 0."""
    rng = np.random.default_rng(1)
    q = rng.normal(size=(30, 4))
    y = rng.normal(size=30)
    model = LinearRegression().fit(q, y)
    grad = q.T @ (y - model.predict(q))
    assert np.allclose(grad, 0, atol=1e-8)


def test_intercept():
    rng = np.random.default_rng(2)
    q = rng.normal(size=(60, 3))
    y = q @ np.array([1.0, -2.0, 0.5]) + 7.0
    model = LinearRegression(fit_intercept=True).fit(q, y)
    assert model.intercept_ == pytest.approx(7.0, abs=1e-8)


def test_rank_deficient_pinv_least_norm():
    """Duplicate columns: the pinv solution is the least-norm one."""
    rng = np.random.default_rng(3)
    base = rng.normal(size=(20, 2))
    q = np.hstack([base, base[:, :1]])  # column 2 duplicates column 0
    y = base @ np.array([1.0, 1.0])
    model = LinearRegression().fit(q, y)
    # least-norm splits the weight across the duplicated columns.
    assert model.coef_[0] == pytest.approx(model.coef_[2])
    assert np.allclose(model.predict(q), y, atol=1e-8)


def test_ridge_shrinks_norm():
    rng = np.random.default_rng(4)
    q = rng.normal(size=(50, 8))
    y = rng.normal(size=50)
    ols = LinearRegression().fit(q, y)
    norms = []
    for lam in (1e-4, 1e-2, 1.0):
        ridge = RidgeRegression(lambda_=lam).fit(q, y)
        norms.append(np.linalg.norm(ridge.coef_))
    assert norms[0] <= np.linalg.norm(ols.coef_) + 1e-9
    assert norms[0] > norms[1] > norms[2]


def test_ridge_limit_matches_ols():
    rng = np.random.default_rng(5)
    q = rng.normal(size=(50, 4))
    y = rng.normal(size=50)
    ridge = RidgeRegression(lambda_=1e-12).fit(q, y)
    ols = LinearRegression().fit(q, y)
    assert np.allclose(ridge.coef_, ols.coef_, atol=1e-6)


def test_ridge_intercept_not_penalised():
    rng = np.random.default_rng(6)
    q = rng.normal(size=(80, 2))
    y = q @ np.array([0.1, -0.1]) + 100.0
    ridge = RidgeRegression(lambda_=10.0, fit_intercept=True).fit(q, y)
    # Heavy penalty shrinks coefficients, but the intercept still absorbs
    # the offset.
    assert ridge.intercept_ == pytest.approx(100.0, abs=1.0)


def test_unfitted_errors():
    with pytest.raises(RuntimeError):
        LinearRegression().predict(np.ones((2, 2)))
    with pytest.raises(ValueError):
        RidgeRegression(lambda_=-1.0)


def test_shape_validation():
    with pytest.raises(ValueError):
        lstsq_pinv(np.ones((3, 2)), np.ones(4))
