"""Distributed statevector simulation over the SPMD communicator.

The HPC-QC system's second parallel axis: when circuit-ensemble parallelism
is exhausted (or a register outgrows one node), the *statevector itself* is
partitioned across ranks.  Standard amplitude-slab decomposition:

* rank ``r`` of ``2^g`` ranks stores amplitudes whose top ``g`` bits equal
  ``r`` -- a contiguous slab of ``2^(n-g)`` amplitudes (optionally batched
  as ``(batch, 2^(n-g))`` so an ensemble shares each exchange);
* gates on qubits ``>= g`` ("local" qubits) touch only the slab and apply
  with the node-local batched kernel;
* single-qubit gates on qubits ``< g`` ("global" qubits) pair each rank
  with a partner differing in that bit: one pairwise exchange + local
  linear combination (the textbook distributed update);
* CNOT/CZ with global qubits reduce to a conditional exchange / local
  phase; every other gate shape falls back to :func:`_apply_dense`, which
  gathers the ``2^|G|`` partner slabs for the gate's global qubits and
  applies the dense matrix on the enlarged virtual register.

Two execution engines share these kernels:

* :func:`run_circuit_distributed` -- the naive per-gate walk (reference
  semantics, and the benchmark baseline);
* :func:`run_compiled_distributed` -- the sharded engine for
  :class:`~repro.quantum.compile.CompiledCircuit` programs.  Fused blocks
  are partitioned into *gate groups* whose combined support fits in the
  local qubits (:func:`~repro.quantum.compile.plan_shard_groups`, the
  qibotf ``DeviceQueues`` pattern): within a group every block runs with
  the node-local kernel and zero communication; global<->local qubit remaps
  (pairwise half-slab exchanges) happen only at group boundaries.
  :class:`CommStats` counts exchanged messages/amplitudes so the
  comm-avoidance win over the per-gate path is measurable.

Every public function is verified against the single-node simulator in the
test suite, rank counts 1/2/4/8.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hpc.comm import Communicator, run_spmd
from repro.quantum.circuit import Circuit
from repro.quantum.gates import gate_matrix
from repro.quantum.statevector import apply_matrix_batch
from repro.utils.validation import check_power_of_two

__all__ = [
    "CommStats",
    "DistributedState",
    "distributed_zero_state",
    "scatter_state",
    "gather_state",
    "apply_gate_distributed",
    "run_circuit_distributed",
    "run_compiled_distributed",
    "run_sharded",
    "expectation_z_distributed",
]

# Tag bases keep the point-to-point streams of distinct kernels readable in
# traces; correctness only needs per-(pair, tag) FIFO, which the mailbox
# queues provide.
_TAG_SINGLE = 400
_TAG_CNOT = 500
_TAG_DENSE = 600
_TAG_SWAP_GL = 700
_TAG_SWAP_GG = 800


@dataclass
class CommStats:
    """Per-rank communication counters (sends only, so ranks sum cleanly).

    ``amplitudes`` counts complex entries shipped -- the volume metric the
    distributed-speedup benchmark gates on.
    """

    messages: int = 0
    amplitudes: int = 0


class DistributedState:
    """One rank's slab of a distributed statevector.

    ``num_qubits`` total register width; ``comm.size`` must be a power of
    two; ``g = log2(size)`` qubits are "global" (their bits select the
    owning rank).  ``slab`` is ``(2^(n-g),)`` for a single state or
    ``(batch, 2^(n-g))`` for an ensemble evolved in lockstep -- batching
    amortises every exchange over the whole ensemble.
    """

    def __init__(self, comm: Communicator, num_qubits: int, slab: np.ndarray):
        size = comm.size
        if size & (size - 1):
            raise ValueError("communicator size must be a power of two")
        g = size.bit_length() - 1
        if num_qubits < g:
            raise ValueError(f"{num_qubits} qubits cannot span {size} ranks")
        expected = 2 ** (num_qubits - g)
        slab = np.ascontiguousarray(slab, dtype=np.complex128)
        if slab.ndim not in (1, 2) or slab.shape[-1] != expected:
            raise ValueError(
                f"slab shape {slab.shape} incompatible with local dim {expected}"
            )
        self.comm = comm
        self.num_qubits = num_qubits
        self.global_qubits = g
        self.slab = slab
        self.stats = CommStats()

    @property
    def local_qubits(self) -> int:
        return self.num_qubits - self.global_qubits

    def local_norm_sq(self) -> float:
        """Sum of |amp|^2 over this rank's slab (all batch entries)."""
        return float(np.sum(np.abs(self.slab) ** 2))

    def norm(self) -> float:
        """Global 2-norm (collective call)."""
        total = self.comm.allreduce(self.local_norm_sq())
        return float(np.sqrt(total))


def distributed_zero_state(
    comm: Communicator, num_qubits: int, batch: int | None = None
) -> DistributedState:
    """|0...0> distributed: rank 0 holds the single nonzero amplitude."""
    size = comm.size
    g = size.bit_length() - 1
    dim = 2 ** (num_qubits - g)
    slab = np.zeros(dim if batch is None else (batch, dim), dtype=np.complex128)
    if comm.rank == 0:
        slab[..., 0] = 1.0
    return DistributedState(comm, num_qubits, slab)


def scatter_state(
    comm: Communicator, state: np.ndarray | None, num_qubits: int
) -> DistributedState:
    """Rank 0 scatters a full statevector (or batch) into per-rank slabs.

    ``num_qubits`` is cross-checked against root's value on *every* rank
    before any data moves, so a mismatched constructor argument surfaces as
    a clear error instead of a downstream slab-shape failure.
    """
    size = comm.size
    g = size.bit_length() - 1
    root_qubits = comm.bcast(num_qubits, root=0)
    if root_qubits != num_qubits:
        raise ValueError(
            f"scatter_state num_qubits mismatch: rank {comm.rank} expects "
            f"{num_qubits} qubits but root is scattering a "
            f"{root_qubits}-qubit state"
        )
    chunk = 2 ** (num_qubits - g)
    if comm.rank == 0:
        state = np.asarray(state, dtype=np.complex128)
        if state.ndim not in (1, 2) or state.shape[-1] != 2**num_qubits:
            raise ValueError(
                f"state shape {state.shape} incompatible with {num_qubits} qubits"
            )
        parts = [state[..., r * chunk : (r + 1) * chunk] for r in range(size)]
    else:
        parts = None
    slab = comm.scatter(parts, root=0)
    return DistributedState(comm, num_qubits, np.array(slab, copy=True))


def gather_state(dist: DistributedState) -> np.ndarray | None:
    """Gather slabs to rank 0 (batched along the last axis); others get None."""
    parts = dist.comm.gather(dist.slab, root=0)
    if dist.comm.rank != 0:
        return None
    return np.concatenate(parts, axis=-1)


# --------------------------------------------------------------- kernels
def _exchange(dist: DistributedState, payload: np.ndarray, partner: int, tag: int):
    """Pairwise send/recv with ``partner``; counts traffic in ``dist.stats``."""
    dist.stats.messages += 1
    dist.stats.amplitudes += int(np.asarray(payload).size)
    dist.comm.send(payload, dest=partner, tag=tag)
    return dist.comm.recv(source=partner, tag=tag)


def _apply_local(dist: DistributedState, matrix: np.ndarray, qubits: list[int]) -> None:
    """Gate entirely on local positions (``>= g``): node-local batched kernel."""
    local_idx = [q - dist.global_qubits for q in qubits]
    shape = dist.slab.shape
    flat = dist.slab.reshape(-1, shape[-1])
    dist.slab = apply_matrix_batch(flat, matrix, local_idx).reshape(shape)


def _apply_global_single(dist: DistributedState, matrix: np.ndarray, qubit: int) -> None:
    """Single-qubit gate on a global qubit: pairwise exchange + combine.

    Partner rank differs in bit ``qubit`` (counted from the top).  The rank
    whose bit is 0 holds the |0> component; after exchanging slabs each rank
    forms its own updated slab from the 2x2 action.
    """
    comm = dist.comm
    g = dist.global_qubits
    bit = g - 1 - qubit  # position of this qubit inside the rank index
    partner = comm.rank ^ (1 << bit)
    my_bit = (comm.rank >> bit) & 1

    other = _exchange(dist, dist.slab, partner, _TAG_SINGLE + qubit)
    if my_bit == 0:
        dist.slab = matrix[0, 0] * dist.slab + matrix[0, 1] * other
    else:
        dist.slab = matrix[1, 0] * other + matrix[1, 1] * dist.slab


def _apply_cnot_global_control(dist: DistributedState, control: int, target: int) -> None:
    """CNOT with global control: ranks with control bit 1 apply X(target)."""
    g = dist.global_qubits
    bit = g - 1 - control
    if (dist.comm.rank >> bit) & 1:
        if target >= g:
            _apply_local(dist, gate_matrix("x"), [target])
        else:
            _apply_global_single(dist, gate_matrix("x"), target)
    elif target < g:
        # Global-target exchange is collective: partner ranks with control
        # bit 0 still participate in the send/recv pattern of the 1-bit
        # exchange *only* among control=1 ranks, so nothing to do here.
        pass


def _apply_cnot_global_target(dist: DistributedState, control: int, target: int) -> None:
    """CNOT with local control, global target: conditional slab exchange.

    Amplitudes with control bit 1 swap between the target-bit partners; the
    control bit is local, so each rank exchanges only the control=1 half of
    its slab.
    """
    comm = dist.comm
    g = dist.global_qubits
    bit = g - 1 - target
    partner = comm.rank ^ (1 << bit)
    local_control = control - g
    # Mask of local indices with control bit set.
    idx = np.arange(dist.slab.shape[-1])
    shift = dist.local_qubits - 1 - local_control
    mask = ((idx >> shift) & 1).astype(bool)

    other = _exchange(
        dist, np.ascontiguousarray(dist.slab[..., mask]), partner, _TAG_CNOT + target
    )
    new_slab = dist.slab.copy()
    new_slab[..., mask] = other
    dist.slab = new_slab


def _apply_cz(dist: DistributedState, qubits: tuple[int, ...]) -> None:
    """CZ with at least one global qubit: diagonal, so a local phase flip."""
    g = dist.global_qubits
    dim = dist.slab.shape[-1]
    idx = np.arange(dim)
    both = np.ones(dim, dtype=bool)
    for q in qubits:
        if q < g:
            if not (dist.comm.rank >> (g - 1 - q)) & 1:
                both &= False
        else:
            shift = dist.local_qubits - 1 - (q - g)
            both &= ((idx >> shift) & 1).astype(bool)
    phase = np.ones(dim)
    phase[both] = -1.0
    dist.slab = dist.slab * phase


def _apply_dense(dist: DistributedState, matrix: np.ndarray, qubits: list[int]) -> None:
    """Dense k-qubit gate at arbitrary positions (the generic fallback).

    For the gate's global positions ``G`` each rank gathers the ``2^|G|-1``
    partner slabs (pairwise full-slab exchanges), forms the virtual register
    ``[sorted(G)..., local qubits...]`` of ``2^|G| * 2^(n-g)`` amplitudes,
    applies the matrix with the node-local kernel, and keeps the quarter
    addressed by its own rank bits.  Exact for any qubit mix; the grouped
    engine avoids it wherever a remap makes the gate local.
    """
    g = dist.global_qubits
    gpos = sorted(q for q in qubits if q < g)
    if not gpos:
        _apply_local(dist, matrix, qubits)
        return
    comm = dist.comm
    ngl = len(gpos)
    bits = [g - 1 - p for p in gpos]  # rank-bit position per global qubit
    my_key = 0
    for b in bits:
        my_key = (my_key << 1) | ((comm.rank >> b) & 1)
    slabs = {my_key: dist.slab}
    for delta in range(1, 2**ngl):
        xor_mask = 0
        for i, b in enumerate(bits):
            if (delta >> (ngl - 1 - i)) & 1:
                xor_mask |= 1 << b
        partner = comm.rank ^ xor_mask
        slabs[my_key ^ delta] = _exchange(dist, dist.slab, partner, _TAG_DENSE)
    # Virtual register: gate's global qubits (ascending) then local qubits.
    dim = dist.slab.shape[-1]
    lead = dist.slab.shape[:-1]
    stacked = np.stack([slabs[k] for k in range(2**ngl)], axis=-2)
    flat = stacked.reshape(-1, 2**ngl * dim)
    virt = [gpos.index(q) if q < g else ngl + (q - g) for q in qubits]
    flat = apply_matrix_batch(flat, matrix, virt)
    out = flat.reshape(lead + (2**ngl, dim))
    dist.slab = np.ascontiguousarray(out[..., my_key, :])


def apply_gate_distributed(
    dist: DistributedState, gate: str, qubits: tuple[int, ...], param: float | None = None
) -> None:
    """Apply one gate to the distributed state (collective call).

    Supports the full gate table at any qubit position: all-local gates
    route through the node-local kernel regardless of name, global
    single-qubit gates and CNOT/CZ use the specialised exchange patterns,
    and everything else (``swap``/``crx``/``cry``/``crz`` with a global
    qubit) goes through the generic dense fallback.
    """
    g = dist.global_qubits
    matrix = gate_matrix(gate, param)
    key = gate.lower()
    # Any gate whose support is entirely local is a plain batched-kernel
    # call -- dispatch on position before dispatching on name.
    if all(q >= g for q in qubits):
        _apply_local(dist, matrix, list(qubits))
        return
    if len(qubits) == 1:
        _apply_global_single(dist, matrix, qubits[0])
        return
    if key in ("cnot", "cx"):
        control, target = qubits
        if control < g:
            _apply_cnot_global_control(dist, control, target)
        else:
            _apply_cnot_global_target(dist, control, target)
        return
    if key == "cz":
        _apply_cz(dist, qubits)
        return
    _apply_dense(dist, matrix, list(qubits))


def run_circuit_distributed(dist: DistributedState, circuit: Circuit) -> DistributedState:
    """Evolve the distributed state through a bound circuit, gate by gate.

    The reference (and benchmark-baseline) engine: every global-qubit gate
    pays its own exchange.  :func:`run_compiled_distributed` is the
    comm-avoiding engine for compiled programs.
    """
    if not circuit.is_bound:
        raise ValueError("run_circuit_distributed requires a bound circuit")
    if circuit.num_qubits != dist.num_qubits:
        raise ValueError("circuit width mismatch")
    for op in circuit:
        apply_gate_distributed(dist, op.gate, op.qubits, op.param)
    return dist


# ----------------------------------------------------- layout / remapping
class _Layout:
    """Tracks which logical qubit sits at each physical register position.

    The grouped engine keeps the slab in a *permuted* register order so a
    whole gate group sees its support on local positions.  ``phys_to_logical``
    and its inverse evolve identically on every rank (the plan is
    deterministic), so no coordination messages are needed.
    """

    def __init__(self, num_qubits: int):
        self.phys_to_logical = list(range(num_qubits))
        self.logical_to_phys = list(range(num_qubits))

    def phys(self, logical: int) -> int:
        return self.logical_to_phys[logical]

    def record_swap(self, p: int, s: int) -> None:
        a, b = self.phys_to_logical[p], self.phys_to_logical[s]
        self.phys_to_logical[p], self.phys_to_logical[s] = b, a
        self.logical_to_phys[a], self.logical_to_phys[b] = s, p

    @property
    def is_identity(self) -> bool:
        return self.phys_to_logical == list(range(len(self.phys_to_logical)))


def _swap_global_local(dist: DistributedState, p: int, s: int) -> None:
    """Swap physical positions ``p`` (global) and ``s`` (local): half-slab exchange.

    Entries whose local ``s``-bit equals the rank's ``p``-bit are fixed
    points of the swap; the other half trades places with the partner rank,
    so each remap ships exactly half a slab per rank.
    """
    comm = dist.comm
    g = dist.global_qubits
    bit = g - 1 - p
    my_bit = (comm.rank >> bit) & 1
    partner = comm.rank ^ (1 << bit)
    shift = dist.local_qubits - 1 - (s - g)
    idx = np.arange(dist.slab.shape[-1])
    mask = (((idx >> shift) & 1) != my_bit)
    other = _exchange(
        dist, np.ascontiguousarray(dist.slab[..., mask]), partner, _TAG_SWAP_GL + p
    )
    new_slab = dist.slab.copy()
    new_slab[..., mask] = other
    dist.slab = new_slab


def _swap_global_global(dist: DistributedState, p: int, s: int) -> None:
    """Swap two global positions: ranks whose two bits differ trade slabs."""
    comm = dist.comm
    g = dist.global_qubits
    b1, b2 = g - 1 - p, g - 1 - s
    if ((comm.rank >> b1) & 1) != ((comm.rank >> b2) & 1):
        partner = comm.rank ^ ((1 << b1) | (1 << b2))
        dist.slab = np.ascontiguousarray(
            _exchange(dist, dist.slab, partner, _TAG_SWAP_GG + p)
        )


def _permute_local(dist: DistributedState, order: list[int]) -> None:
    """Reorder local axes so new axis ``j`` holds current axis ``order[j]``."""
    loc = dist.local_qubits
    if list(order) == list(range(loc)):
        return
    shape = dist.slab.shape
    lead = shape[:-1]
    nb = len(lead)
    tensor = dist.slab.reshape(lead + (2,) * loc)
    tensor = np.transpose(tensor, tuple(range(nb)) + tuple(nb + o for o in order))
    dist.slab = np.ascontiguousarray(tensor.reshape(shape))


def _remap(dist: DistributedState, layout: _Layout, target_globals) -> None:
    """Move the logical qubits in ``target_globals`` into the global slots.

    Pairs each global slot holding a logical qubit that must become local
    with a target qubit currently local -- one half-slab exchange per pair,
    the minimum number of swaps for the transition.
    """
    g = dist.global_qubits
    target = set(target_globals)
    outgoing = [p for p in range(g) if layout.phys_to_logical[p] not in target]
    incoming = [q for q in sorted(target) if layout.logical_to_phys[q] >= g]
    for p, q in zip(outgoing, incoming, strict=True):
        s = layout.logical_to_phys[q]
        _swap_global_local(dist, p, s)
        layout.record_swap(p, s)


def _restore_layout(dist: DistributedState, layout: _Layout) -> None:
    """Return the slab to canonical (identity) register order."""
    if layout.is_identity:
        return
    g = dist.global_qubits
    n = dist.num_qubits
    # 1. Logical qubits 0..g-1 into the global slots (half-slab exchanges).
    _remap(dist, layout, range(g))
    # 2. Order the global slots among themselves (full-slab exchanges).
    for p in range(g):
        if layout.phys_to_logical[p] != p:
            s = layout.logical_to_phys[p]
            _swap_global_global(dist, p, s)
            layout.record_swap(p, s)
    # 3. One transpose fixes all local positions at once -- no communication.
    order = [layout.logical_to_phys[q] - g for q in range(g, n)]
    _permute_local(dist, order)
    layout.phys_to_logical = list(range(n))
    layout.logical_to_phys = list(range(n))


# ----------------------------------------------------- compiled execution
def run_compiled_distributed(
    dist: DistributedState, program, plan=None
) -> DistributedState:
    """Evolve the distributed state through a compiled program (collective).

    Executes group by group: remap the register so the group's global slots
    hold only qubits the group never touches, then run every fused block
    with the node-local batched kernel.  Communication happens only in the
    remaps at group boundaries (plus dense fallbacks for blocks wider than
    the local register) -- the comm-avoidance win the benchmark measures.

    ``program`` is a :class:`~repro.quantum.compile.CompiledCircuit` (a
    bound :class:`Circuit` is compiled on the fly).  ``plan`` may carry a
    precomputed :func:`~repro.quantum.compile.plan_shard_groups` result so
    per-call planning is amortised across an ensemble.
    """
    from repro.quantum.compile import (
        DEFAULT_FUSION_WIDTH,
        CompiledCircuit,
        compile_circuit,
        plan_shard_groups,
    )

    if isinstance(program, Circuit):
        width = max(1, min(DEFAULT_FUSION_WIDTH, dist.local_qubits))
        program = compile_circuit(program, max_width=width)
    if not isinstance(program, CompiledCircuit):
        raise TypeError(f"expected Circuit or CompiledCircuit, got {type(program)!r}")
    if program.num_qubits != dist.num_qubits:
        raise ValueError("program width mismatch")
    g = dist.global_qubits
    if plan is None:
        plan = plan_shard_groups(program, g)
    layout = _Layout(dist.num_qubits)
    for group in plan:
        if group.global_qubits is None:
            # Block wider than the local register: dense fallback at the
            # current layout.
            for block in group.blocks:
                _apply_dense(dist, block.matrix, [layout.phys(q) for q in block.qubits])
        else:
            _remap(dist, layout, group.global_qubits)
            for block in group.blocks:
                _apply_local(dist, block.matrix, [layout.phys(q) for q in block.qubits])
    _restore_layout(dist, layout)
    return dist


def run_sharded(
    program,
    states: np.ndarray,
    shards: int,
    timeout: float | None = 120.0,
) -> np.ndarray:
    """Evolve ``states`` through ``program`` on ``shards`` SPMD ranks.

    The one-call front end the :class:`DistributedStatevectorBackend` uses:
    the ``(batch, 2^n)`` ensemble is slab-partitioned across ranks, evolved
    through the grouped engine in lockstep (every exchange amortised over
    the batch), and gathered back.  ``shards=1`` degenerates to a single
    rank with zero communication.
    """
    if not isinstance(shards, (int, np.integer)) or isinstance(shards, bool):
        raise ValueError(f"shards must be an int, got {shards!r}")
    shards = int(shards)
    if shards < 1 or shards & (shards - 1):
        raise ValueError(f"shards={shards} must be a power of two >= 1")
    states = np.asarray(states, dtype=np.complex128)
    squeeze = states.ndim == 1
    batch = states[None, :] if squeeze else states
    if batch.ndim != 2:
        raise ValueError(f"states must be 1-D or 2-D, got ndim={states.ndim}")
    n = check_power_of_two(batch.shape[-1], "state dimension")
    g = shards.bit_length() - 1
    if n < g:
        raise ValueError(f"{n} qubits cannot span {shards} shards")

    from repro.quantum.compile import (
        DEFAULT_FUSION_WIDTH,
        CompiledCircuit,
        compile_circuit,
        plan_shard_groups,
    )

    if isinstance(program, Circuit):
        width = max(1, min(DEFAULT_FUSION_WIDTH, n - g))
        program = compile_circuit(program, max_width=width)
    if not isinstance(program, CompiledCircuit):
        raise TypeError(f"expected Circuit or CompiledCircuit, got {type(program)!r}")
    if program.num_qubits != n:
        raise ValueError(
            f"program acts on {program.num_qubits} qubits, states have {n}"
        )
    plan = plan_shard_groups(program, g)
    chunk = 2 ** (n - g)

    def prog(comm: Communicator):
        slab = np.ascontiguousarray(batch[:, comm.rank * chunk : (comm.rank + 1) * chunk])
        dist = DistributedState(comm, n, slab)
        run_compiled_distributed(dist, program, plan=plan)
        return gather_state(dist)

    out = run_spmd(prog, shards, timeout=timeout)[0]
    return out[0] if squeeze else out


def expectation_z_distributed(dist: DistributedState, qubit: int):
    """``<Z_qubit>`` without gathering (collective allreduce).

    Z is diagonal, so each rank sums |amp|^2 with the qubit-bit sign and one
    allreduce finishes the job -- the communication-avoiding pattern used
    for diagonal observables in production distributed simulators.  For a
    batched slab returns one expectation per batch entry.
    """
    g = dist.global_qubits
    if qubit < g:
        bit = (dist.comm.rank >> (g - 1 - qubit)) & 1
        local = (1.0 - 2.0 * bit) * np.sum(np.abs(dist.slab) ** 2, axis=-1)
    else:
        idx = np.arange(dist.slab.shape[-1])
        shift = dist.local_qubits - 1 - (qubit - g)
        signs = 1.0 - 2.0 * ((idx >> shift) & 1)
        local = np.sum(signs * np.abs(dist.slab) ** 2, axis=-1)
    total = dist.comm.allreduce(local)
    if dist.slab.ndim == 1:
        return float(total)
    return np.asarray(total)
