"""E2 -- paper Table IV: ten-class classification, 400 even train samples.

Rows: softmax logistic, MLP, variational (partition readout), and the
1-order + 2-local post-variational model.  Shape assertions: the
variational model sits near chance (paper: 0.1675 at 10 classes); the
post-variational model is comparable to the MLP's training accuracy and
clearly above logistic (paper: 0.825 vs 0.815 vs 0.6725).
"""

from __future__ import annotations


from benchmarks.conftest import flatten_angles
from repro.core.model import PostVariationalClassifier
from repro.core.strategies import HybridStrategy
from repro.core.variational import VariationalClassifier
from repro.ml.logistic import SoftmaxRegression
from repro.ml.metrics import accuracy
from repro.ml.mlp import MLPClassifier

PAPER_TABLE4 = {
    "logistic": (0.8246, 0.6725),
    "mlp": (0.4865, 0.8150),
    "variational": (None, 0.1675),
    "pv_1order_2local": (0.6786, 0.8250),
}


def run_table4(split) -> dict[str, dict[str, float]]:
    xtr = flatten_angles(split.x_train)
    xte = flatten_angles(split.x_test)
    rows: dict[str, dict[str, float]] = {}

    logistic = SoftmaxRegression(num_classes=10).fit(xtr, split.y_train)
    rows["logistic"] = {
        "train_loss": logistic.loss(xtr, split.y_train),
        "train_acc": accuracy(split.y_train, logistic.predict(xtr)),
        "test_acc": accuracy(split.y_test, logistic.predict(xte)),
    }

    mlp = MLPClassifier(hidden=16, num_classes=10, epochs=300, seed=0).fit(
        xtr, split.y_train
    )
    rows["mlp"] = {
        "train_loss": mlp.loss(xtr, split.y_train),
        "train_acc": accuracy(split.y_train, mlp.predict(xtr)),
        "test_acc": accuracy(split.y_test, mlp.predict(xte)),
    }

    var = VariationalClassifier(num_classes=10, epochs=20).fit(
        split.x_train, split.y_train
    )
    rows["variational"] = {
        "train_loss": float("nan"),
        "train_acc": var.score(split.x_train, split.y_train),
        "test_acc": var.score(split.x_test, split.y_test),
    }

    pv = PostVariationalClassifier(
        strategy=HybridStrategy(order=1, locality=2), num_classes=10
    ).fit(split.x_train, split.y_train)
    rows["pv_1order_2local"] = {
        "train_loss": pv.loss(split.x_train, split.y_train),
        "train_acc": pv.score(split.x_train, split.y_train),
        "test_acc": pv.score(split.x_test, split.y_test),
    }
    return rows


def test_table4(benchmark, table4_split):
    rows = benchmark.pedantic(run_table4, args=(table4_split,), rounds=1, iterations=1)
    print("\n=== Table IV reproduction (10-class) ===")
    print(f"{'model':<18} {'train loss':>10} {'train acc':>9} {'test acc':>9}  paper acc")
    for name, r in rows.items():
        print(
            f"{name:<18} {r['train_loss']:>10.4f} {r['train_acc']:>9.3f} "
            f"{r['test_acc']:>9.3f}  {PAPER_TABLE4[name][1]:.4f}"
        )

    # Variational near chance (10 classes -> 0.1).
    assert rows["variational"]["train_acc"] < 0.3
    # PV well above logistic (the paper's headline gap).
    assert rows["pv_1order_2local"]["train_acc"] > rows["logistic"]["train_acc"] + 0.1
    # PV comparable to the MLP's training accuracy (within 10 points).
    assert rows["pv_1order_2local"]["train_acc"] >= rows["mlp"]["train_acc"] - 0.10
    # Everyone beats chance except the variational baseline.
    for name in ("logistic", "mlp", "pv_1order_2local"):
        assert rows[name]["train_acc"] > 0.5
