"""Versioned JSON+binary wire protocol for the serving transport.

One frame is the unit of the wire: a fixed binary prefix (magic, protocol
version, header length, payload length), a JSON *header* carrying the
message metadata, and an optional raw binary *payload* carrying float64
feature/angle blocks byte-for-byte::

    +-------+---------+------------+-------------+--------------+---------+
    | magic | version | header_len | payload_len | JSON header  | payload |
    | 4 B   | 1 B     | 4 B (!I)   | 4 B (!I)    | header_len B | raw f64 |
    +-------+---------+------------+-------------+--------------+---------+

Numeric arrays never round-trip through JSON: angles travel as the raw
bytes of a C-contiguous float64 array (shape/dtype in the header), so a
response read off the socket is bit-identical to the array the server
computed -- the serving layer's equality contract extends to the wire.

Message types (``header["type"]``), client -> server::

    hello    {version}                      open the session
    submit   {id, template, tenant, seed?, timeout_s?, stream?, array}
    predict  {id, template, tenant, seed?, timeout_s?, array}

and server -> client::

    welcome  {version, templates: {name: {rows, cols, layout, head}}}
    result   {id, array}                    one-frame response
    begin    {id, shape}                    streamed response opens
    block    {id, ansatz, lo, hi, array}    one ansatz-block slice
    end      {id}                           streamed response closes
    error    {id, code, message, ...}       structured failure

``seed`` is tri-state exactly like :meth:`FeatureService.submit`: key
absent = the template's default seed, ``null`` = fresh entropy per call,
an int = that seed.  Errors carry a stable ``code`` from
:data:`ERROR_CODES` so clients re-raise the matching exception type
instead of parsing prose.

Everything here is pure framing -- no sockets, no service -- so both the
server and the client transports build on one implementation, and tests
can exercise malformed frames without a running server.
"""

from __future__ import annotations

import asyncio
import json
import struct
from collections.abc import Mapping
from typing import Any

import numpy as np

__all__ = [
    "PROTOCOL_VERSION",
    "FRAME_MAGIC",
    "FRAME_OVERHEAD",
    "DEFAULT_MAX_FRAME_BYTES",
    "ERROR_CODES",
    "ProtocolError",
    "pack_frame",
    "read_frame",
    "encode_array",
    "decode_array",
]

#: Wire protocol version; bumped on any frame- or message-level change.
PROTOCOL_VERSION = 1

#: Frame magic: "Repro Quantum Feature" + frame marker.
FRAME_MAGIC = b"RQF\x00"

_PREFIX = struct.Struct("!4sBII")

#: Fixed bytes every frame spends before its header: magic + version +
#: the two length words.  The lint floor for ``max_frame_bytes`` (RPA115)
#: is this plus one float64 feature row.
FRAME_OVERHEAD = _PREFIX.size

#: Default per-frame size bound (header + payload), generous enough for
#: multi-thousand-sample blocks while still refusing a corrupt length
#: word before allocating its buffer.
DEFAULT_MAX_FRAME_BYTES = 16 * 2**20

#: Stable error codes an ``error`` frame may carry.  Append-only, like
#: diagnostic codes: clients dispatch on these to re-raise typed errors.
ERROR_CODES = (
    "timeout",          # the request exceeded its deadline (peers unaffected)
    "backpressure",     # admission rejected the tenant at the door
    "unknown_template", # no registration under that name
    "bad_request",      # malformed submit (shape/seed/field errors)
    "unavailable",      # server draining or service stopped
    "protocol",         # unreadable frame (magic/version/length)
    "internal",         # flush execution failed server-side
)


class ProtocolError(RuntimeError):
    """A frame violated the wire protocol (magic, version, or bounds)."""


def pack_frame(header: Mapping[str, Any], payload: bytes = b"") -> bytes:
    """Serialize one frame: prefix + JSON header + raw payload."""
    header_bytes = json.dumps(dict(header), sort_keys=True).encode("utf-8")
    return (
        _PREFIX.pack(
            FRAME_MAGIC, PROTOCOL_VERSION, len(header_bytes), len(payload)
        )
        + header_bytes
        + payload
    )


async def read_frame(
    reader: asyncio.StreamReader, *, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES
) -> tuple[dict[str, Any], bytes] | None:
    """Read one frame; ``None`` on clean EOF at a frame boundary.

    Raises :class:`ProtocolError` on bad magic, a version mismatch, a
    frame larger than ``max_frame_bytes``, or a connection that dies
    mid-frame -- anything after which the stream position is untrustworthy.
    """
    try:
        prefix = await reader.readexactly(_PREFIX.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean close between frames
        raise ProtocolError(
            f"connection closed mid-prefix ({len(exc.partial)} of "
            f"{_PREFIX.size} bytes)"
        ) from None
    magic, version, header_len, payload_len = _PREFIX.unpack(prefix)
    if magic != FRAME_MAGIC:
        raise ProtocolError(f"bad frame magic {magic!r} (not a repro peer?)")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"peer speaks protocol version {version}, this side speaks "
            f"{PROTOCOL_VERSION}"
        )
    total = FRAME_OVERHEAD + header_len + payload_len
    if total > max_frame_bytes:
        raise ProtocolError(
            f"frame of {total} bytes exceeds max_frame_bytes={max_frame_bytes}"
        )
    try:
        # One read for header + payload: halves the await round-trips a
        # frame costs on the hot path.
        body = await reader.readexactly(header_len + payload_len)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError(
            f"connection closed mid-frame ({len(exc.partial)} bytes short)"
        ) from None
    header_bytes = body[:header_len]
    payload = body[header_len:] if payload_len else b""
    try:
        header = json.loads(header_bytes)
    except ValueError as exc:
        raise ProtocolError(f"unparseable frame header: {exc}") from None
    if not isinstance(header, dict) or not isinstance(header.get("type"), str):
        raise ProtocolError("frame header must be an object with a 'type'")
    return header, payload


def encode_array(x: np.ndarray) -> tuple[dict[str, Any], bytes]:
    """``(metadata, payload)`` for one float64 array.

    The payload is the raw bytes of the C-contiguous float64 view, so
    ``decode_array(*encode_array(x))`` is bit-identical to ``x``.
    """
    arr = np.ascontiguousarray(x, dtype=np.float64)
    return {"shape": list(arr.shape), "dtype": "float64"}, arr.tobytes()


def decode_array(meta: Mapping[str, Any], payload: bytes) -> np.ndarray:
    """Rebuild the array ``encode_array`` shipped (validating the meta)."""
    if not isinstance(meta, Mapping) or "shape" not in meta:
        raise ProtocolError(f"frame carries no array metadata: {meta!r}")
    if meta.get("dtype", "float64") != "float64":
        raise ProtocolError(f"unsupported wire dtype {meta.get('dtype')!r}")
    shape = tuple(int(dim) for dim in meta["shape"])
    expected = 8 * int(np.prod(shape)) if shape else 8
    if len(payload) != expected:
        raise ProtocolError(
            f"payload of {len(payload)} bytes does not match shape {shape} "
            f"({expected} bytes expected)"
        )
    return np.frombuffer(payload, dtype=np.float64).reshape(shape).copy()
