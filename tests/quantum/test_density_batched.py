"""Batched density engine: compilation, stacked evolution, step folding.

Everything pins against the per-sample reference walk
(:func:`run_circuit_density` over bound circuits), which the rest of the
suite already validates against analytic channels -- so the batched engine
inherits the same ground truth.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.encoding import encoding_template
from repro.quantum.batched import extend_template
from repro.quantum.circuit import Circuit
from repro.quantum.density import (
    BatchedDensityProgram,
    apply_kraus,
    compile_density_template,
    concat_density_programs,
    fold_density_program,
    pure_density,
    run_batched_density,
    run_circuit_density,
)
from repro.quantum.mitigation import fold_circuit
from repro.quantum.noise import NoiseModel
from repro.quantum.statevector import run_circuit


def _template(rows=3, cols=2):
    return encoding_template(rows, cols)


def _ansatz(n=2):
    c = Circuit(n, name="ansatz")
    c.append("ry", 0, 0.4).append("cnot", (0, 1)).append("rz", 1, -0.9)
    c.append("ry", 1, 1.3).append("cnot", (1, 0))
    return c


def _angles(batch, slots, seed=0):
    rng = np.random.default_rng(seed)
    return rng.uniform(0, 2 * np.pi, size=(batch, slots))


def _per_sample(template, angles, noise=None, scale=1):
    out = []
    for row in angles:
        bound = template.bind(row)
        if scale != 1:
            bound = fold_circuit(bound, scale)
        out.append(run_circuit_density(bound, noise_model=noise))
    return np.stack(out)


# ---------------------------------------------------------------- compilation
def test_compile_structure_and_pass_count():
    noise = NoiseModel.depolarizing(0.01)
    template = extend_template(_template(), _ansatz())
    program = compile_density_template(template, noise)
    assert isinstance(program, BatchedDensityProgram)
    assert program.num_qubits == 2
    assert program.num_slots == 6
    assert program.num_steps == len(template.operations)
    # One superoperator pass per gate plus one per inserted channel (the
    # channel's Kraus sum collapses into a single pass at compile time).
    expected = 0
    for op in template.operations:
        expected += 1 + len(list(noise.channels_after(op)))
    assert program.num_kernel_passes == expected
    assert program.num_kernel_passes > program.num_steps


def test_compile_rejects_parametric_non_rotation():
    c = Circuit(2)
    c.append("crz", (0, 1), "theta")
    with pytest.raises(ValueError, match="parametric"):
        compile_density_template(c)


def test_slot_order_matches_registration():
    program = compile_density_template(_template())
    slots = [s.slot for s in program.steps if s.matrix is None]
    assert slots == list(range(program.num_slots))


# ----------------------------------------------------------------- evolution
@pytest.mark.parametrize("noise", [None, NoiseModel.depolarizing(0.02)],
                         ids=["ideal", "depolarizing"])
def test_batched_matches_per_sample_walk(noise):
    template = extend_template(_template(), _ansatz())
    program = compile_density_template(template, noise)
    angles = _angles(5, program.num_slots)
    batched = run_batched_density(program, angles)
    oracle = _per_sample(template, angles, noise)
    assert np.abs(batched - oracle).max() < 1e-10


def test_noiseless_density_matches_statevector_projector():
    """Ideal batched density evolution is the pure projector of the
    statevector run -- the cross-engine micro-assert."""
    template = extend_template(_template(), _ansatz())
    program = compile_density_template(template)
    angles = _angles(4, program.num_slots, seed=3)
    batched = run_batched_density(program, angles)
    for rho, row in zip(batched, angles, strict=True):
        psi = run_circuit(template.bind(row))
        assert np.abs(rho - pure_density(psi)).max() < 1e-10


def test_trace_preserved_under_noise():
    program = compile_density_template(
        _template(), NoiseModel.depolarizing(0.05, 0.2)
    )
    batched = run_batched_density(program, _angles(3, program.num_slots))
    traces = np.trace(batched, axis1=1, axis2=2)
    assert np.abs(traces - 1.0).max() < 1e-12


def test_angles_shape_validated():
    program = compile_density_template(_template())
    with pytest.raises(ValueError, match="angle slots"):
        run_batched_density(program, np.zeros((4, program.num_slots + 1)))


def test_trailing_axes_flattened_c_order():
    program = compile_density_template(_template(3, 2))
    flat = _angles(4, 6, seed=9)
    shaped = flat.reshape(4, 3, 2)
    assert np.array_equal(
        run_batched_density(program, flat), run_batched_density(program, shaped)
    )


# ------------------------------------------------------------------- folding
@pytest.mark.parametrize("scale", [1, 3, 5])
def test_fold_matches_per_sample_fold_circuit(scale):
    noise = NoiseModel.depolarizing(0.02)
    template = extend_template(_template(), _ansatz())
    program = fold_density_program(compile_density_template(template, noise), scale)
    angles = _angles(4, program.num_slots, seed=1)
    batched = run_batched_density(program, angles)
    oracle = _per_sample(template, angles, noise, scale=scale)
    assert np.abs(batched - oracle).max() < 1e-10


def test_fold_scale_one_is_identity():
    program = compile_density_template(_template())
    assert fold_density_program(program, 1) is program


@pytest.mark.parametrize("scale", [0, 2, 4, -1])
def test_fold_scale_must_be_odd_positive(scale):
    program = compile_density_template(_template())
    with pytest.raises(ValueError, match="odd"):
        fold_density_program(program, scale)


def test_fold_multiplies_pass_count():
    noise = NoiseModel.depolarizing(0.01)
    program = compile_density_template(_template(), noise)
    folded = fold_density_program(program, 3)
    assert folded.num_kernel_passes == 3 * program.num_kernel_passes


# ------------------------------------------------------------------- concat
def test_concat_appends_steps():
    first = compile_density_template(_template())
    second = compile_density_template(_ansatz())
    combined = concat_density_programs(first, second)
    assert combined.num_steps == first.num_steps + second.num_steps
    assert combined.num_slots == first.num_slots


def test_concat_validation():
    with pytest.raises(ValueError, match="at least one"):
        concat_density_programs()
    two_q = compile_density_template(_template(2, 2))
    three_q = compile_density_template(encoding_template(2, 3))
    with pytest.raises(ValueError, match="qubit count"):
        concat_density_programs(two_q, three_q)
    bound = compile_density_template(_ansatz())
    with pytest.raises(ValueError, match="angle slots"):
        concat_density_programs(bound, two_q)


# --------------------------------------------------------------- apply_kraus
def test_apply_kraus_empty_channel_gives_zeros():
    rho = pure_density(np.array([1.0, 0.0]))
    out = apply_kraus(rho, [], [0])
    assert out.shape == rho.shape
    assert np.all(out == 0)


def test_apply_kraus_does_not_mutate_input():
    rng = np.random.default_rng(2)
    psi = rng.normal(size=4) + 1j * rng.normal(size=4)
    psi /= np.linalg.norm(psi)
    rho = pure_density(psi)
    before = rho.copy()
    kraus = NoiseModel.depolarizing(0.3).one_qubit
    apply_kraus(rho, kraus, [1])
    assert np.array_equal(rho, before)
