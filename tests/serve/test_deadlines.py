"""Deadline and cancellation semantics: timeouts never stall flush-mates.

A request's ``timeout_s`` covers the batch window AND the flush.  Whether
the deadline fires while the request is still queued (mid-window) or after
its group was handed to the runtime (mid-flush), the caller gets a
structured :class:`RequestTimeoutError`, the tenant's admission units come
back, and every coalesced survivor completes bit-equal to standalone
``generate_features``.  Client cancellation (a vanished connection) takes
the same withdrawal path, and draining the service leaves zero orphaned
futures behind.
"""

from __future__ import annotations

import asyncio
import time

import numpy as np
import pytest

from repro.api.config import ExecutionConfig
from repro.core.features import generate_features
from repro.core.strategies import strategy_from_name
from repro.serve import FeatureService, RequestTimeoutError, ServeConfig

QUBITS = 3
ROWS = 2


def make_service(**overrides) -> FeatureService:
    defaults = dict(
        batch_window_ms=2.0,
        pool="serial",
        cache_results=False,
        execution=ExecutionConfig(vectorize="auto", compile="auto", seed=7),
    )
    defaults.update(overrides)
    service = FeatureService(ServeConfig(**defaults))
    service.register(
        "t", strategy_from_name("observable", num_qubits=QUBITS), rows=ROWS
    )
    return service


def angles(k: int = 2, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.uniform(0, np.pi, size=(k, ROWS, QUBITS))


def standalone(service: FeatureService, x: np.ndarray, seed: int) -> np.ndarray:
    registration = service._registrations["t"]
    cfg = registration.artifacts.cfg.merged(seed=seed)
    return generate_features(registration.strategy, x, config=cfg)


def _slow_flush(monkeypatch, delay_s: float):
    """Make every flush take ``delay_s`` inside the runtime worker."""
    from repro.serve import engine

    real_execute = engine.execute_flush

    def slow_execute(artifacts, requests):
        time.sleep(delay_s)
        return real_execute(artifacts, requests)

    monkeypatch.setattr("repro.serve.service.execute_flush", slow_execute)


# ------------------------------------------------------------- mid-window
def test_mid_window_timeout_spares_coalesced_peers():
    """A deadline elapsing inside the batch window withdraws only that
    request: its flush-mates coalesce without it and stay bit-equal."""

    async def main():
        service = make_service(batch_window_ms=150.0)
        async with service:
            doomed = asyncio.ensure_future(
                service.submit("t", angles(seed=1), seed=1, timeout_s=0.01)
            )
            survivor = asyncio.ensure_future(
                service.submit("t", angles(seed=2), seed=2)
            )
            with pytest.raises(RequestTimeoutError) as info:
                await doomed
            assert info.value.template == "t"
            assert info.value.tenant == "default"
            assert info.value.timeout_s == 0.01
            result = await survivor
            assert np.array_equal(result, standalone(service, angles(seed=2), 2))
        snapshot = service.metrics()
        assert snapshot.timeouts_total == 1
        assert snapshot.queue_depth == 0

    asyncio.run(main())


def test_mid_window_timeout_releases_admission():
    """Timed-out requests return their admission units immediately: with
    depth 1, the same tenant can submit again right after the timeout."""

    async def main():
        service = make_service(batch_window_ms=200.0, max_queue_depth=1)
        async with service:
            with pytest.raises(RequestTimeoutError):
                await service.submit("t", angles(seed=1), seed=1, timeout_s=0.01)
            assert service.metrics().queue_depth == 0
            retry = await service.submit("t", angles(seed=1), seed=1)
            assert np.array_equal(retry, standalone(service, angles(seed=1), 1))

    asyncio.run(main())


# -------------------------------------------------------------- mid-flush
def test_mid_flush_timeout_spares_coalesced_peers(monkeypatch):
    """A deadline elapsing after the group flushed abandons only that
    future; the in-flight flush still resolves every survivor bit-equal."""
    _slow_flush(monkeypatch, 0.2)

    async def main():
        service = make_service(batch_window_ms=5.0)
        async with service:
            doomed = asyncio.ensure_future(
                service.submit("t", angles(seed=1), seed=1, timeout_s=0.05)
            )
            survivor = asyncio.ensure_future(
                service.submit("t", angles(seed=2), seed=2)
            )
            with pytest.raises(RequestTimeoutError):
                await doomed
            result = await survivor
            assert np.array_equal(result, standalone(service, angles(seed=2), 2))
        snapshot = service.metrics()
        assert snapshot.timeouts_total == 1
        assert snapshot.queue_depth == 0
        assert snapshot.errors_total == 0

    asyncio.run(main())


def test_mid_flush_timeout_with_flush_error_does_not_leak(monkeypatch):
    """Worst case: the flush fails AFTER the deadline abandoned the
    request.  The error lands on the abandoned future (retrieved, not
    orphaned), admission is released, and the tenant is not poisoned."""
    from repro.serve import engine  # noqa: F401 -- mirrors _slow_flush idiom

    def failing_execute(artifacts, requests):
        time.sleep(0.15)
        raise RuntimeError("flush exploded")

    monkeypatch.setattr("repro.serve.service.execute_flush", failing_execute)

    async def main():
        service = make_service(batch_window_ms=5.0, max_queue_depth=2)
        async with service:
            with pytest.raises(RequestTimeoutError):
                await service.submit("t", angles(seed=1), seed=1, timeout_s=0.05)
            # Give the doomed flush time to fail and resolve its futures.
            await asyncio.sleep(0.3)
            assert service.metrics().queue_depth == 0
            with pytest.raises(RuntimeError, match="flush exploded"):
                await service.submit("t", angles(seed=2), seed=2)
            assert service.metrics().queue_depth == 0

    asyncio.run(main())


# ----------------------------------------------------------- cancellation
def test_cancel_mid_window_withdraws_and_releases():
    """Cancelling a waiting submit (client disconnect) dequeues it from
    its coalescing group and releases admission; peers are unaffected."""

    async def main():
        service = make_service(batch_window_ms=150.0, max_queue_depth=2)
        async with service:
            doomed = asyncio.ensure_future(
                service.submit("t", angles(seed=1), seed=1)
            )
            survivor = asyncio.ensure_future(
                service.submit("t", angles(seed=2), seed=2)
            )
            await asyncio.sleep(0.01)  # both queued, window still open
            assert service.metrics().queue_depth == 2
            doomed.cancel()
            with pytest.raises(asyncio.CancelledError):
                await doomed
            assert service.metrics().queue_depth == 1
            assert service._batcher is not None
            assert service._batcher.pending == 1
            result = await survivor
            assert np.array_equal(result, standalone(service, angles(seed=2), 2))
        assert service.metrics().queue_depth == 0

    asyncio.run(main())


def test_cancel_mid_flush_skips_resolution(monkeypatch):
    """Cancelling after the flush started leaves the flush to finish; the
    abandoned future is skipped at resolution and survivors stay exact."""
    _slow_flush(monkeypatch, 0.2)

    async def main():
        service = make_service(batch_window_ms=5.0)
        async with service:
            doomed = asyncio.ensure_future(
                service.submit("t", angles(seed=1), seed=1)
            )
            survivor = asyncio.ensure_future(
                service.submit("t", angles(seed=2), seed=2)
            )
            await asyncio.sleep(0.05)  # window closed, flush in flight
            doomed.cancel()
            with pytest.raises(asyncio.CancelledError):
                await doomed
            result = await survivor
            assert np.array_equal(result, standalone(service, angles(seed=2), 2))
        assert service.metrics().queue_depth == 0

    asyncio.run(main())


# ------------------------------------------------------------------ drain
def test_drain_leaves_zero_orphaned_futures():
    """stop() flushes every open window and awaits every in-flight flush:
    no pending requests, no in-flight tasks, every caller resolved."""

    async def main():
        service = make_service(batch_window_ms=500.0)
        await service.start()
        pending = [
            asyncio.ensure_future(
                service.submit("t", angles(seed=i), seed=i)
            )
            for i in range(1, 4)
        ]
        await asyncio.sleep(0.01)  # all parked in the 500 ms window
        batcher = service._batcher
        assert batcher is not None
        assert batcher.pending == 3
        await service.stop()
        assert batcher.pending == 0
        assert batcher.inflight_flushes == 0
        for i, fut in enumerate(pending, start=1):
            assert np.array_equal(
                await fut, standalone(service, angles(seed=i), i)
            )

    asyncio.run(main())


def test_drain_after_abandonment_leaves_zero_orphans(monkeypatch):
    """Draining while an abandoned request's flush is in flight still
    terminates cleanly with nothing left pending or in flight."""
    _slow_flush(monkeypatch, 0.15)

    async def main():
        service = make_service(batch_window_ms=5.0)
        await service.start()
        with pytest.raises(RequestTimeoutError):
            await service.submit("t", angles(seed=1), seed=1, timeout_s=0.03)
        batcher = service._batcher
        assert batcher is not None
        await service.stop()
        assert batcher.pending == 0
        assert batcher.inflight_flushes == 0
        assert service.metrics().queue_depth == 0

    asyncio.run(main())


# --------------------------------------------------------------- validation
def test_timeout_validation():
    async def main():
        service = make_service()
        async with service:
            for bad in (0, -1.0, "1"):
                with pytest.raises(ValueError, match="timeout_s"):
                    await service.submit("t", angles(), timeout_s=bad)

    asyncio.run(main())
