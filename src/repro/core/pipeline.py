"""End-to-end hybrid HPC-QC pipeline orchestrator.

This is the SC-track system layer: it stages the post-variational workflow
(encode -> dispatch circuit ensemble -> gather Q -> convex fit) through the
HPC substrate, instruments every stage (profiling guide: measure first), and
-- because real quantum hardware is replaced by the simulator -- also
projects wall-clock onto the deterministic cluster model so dispatch
policies can be compared reproducibly.

The quantum workload dispatched per node is exactly what a real deployment
would ship: (fixed circuit, data chunk, shot budget) triples returning
Q-matrix blocks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal

import numpy as np

from repro.core.features import (
    feature_circuit_tasks,
    feature_jobs,
    generate_features,
    resolve_chunk_size,
)
from repro.core.lifecycle import ExecutorOwnerMixin
from repro.core.strategies import Strategy
from repro.hpc.cluster import CircuitTask, ClusterModel
from repro.hpc.executor import ParallelExecutor
from repro.hpc.profiling import Counter, StageTimer, dispatch_summary
from repro.hpc.runtime import DispatchReport, ExecutionRuntime
from repro.quantum.backends import QuantumBackend, resolve_backend
from repro.ml.logistic import LogisticRegression, SoftmaxRegression
from repro.ml.metrics import accuracy

__all__ = ["PipelineReport", "HybridPipeline"]


@dataclass
class PipelineReport:
    """Everything a run log needs: sizes, timings, projected makespan.

    ``dispatch`` carries the live runtime's measured per-task wall-clock,
    reconciling the analytic makespan projection against reality (see
    :meth:`repro.hpc.runtime.DispatchReport.reconcile`).
    """

    num_features: int
    num_ansatze: int
    num_observables: int
    num_train: int
    timer: StageTimer
    counter: Counter
    projected_makespan: float | None = None
    scheduling_policy: str | None = None
    dispatch: DispatchReport | None = None

    def summary(self) -> str:
        lines = [
            f"ensemble: p={self.num_ansatze} x q={self.num_observables} "
            f"= m={self.num_features} features, d={self.num_train} samples",
            self.timer.report(),
        ]
        if self.projected_makespan is not None:
            lines.append(
                f"projected cluster makespan ({self.scheduling_policy}): "
                f"{self.projected_makespan:.4f}s"
            )
        if self.dispatch is not None:
            lines.append(dispatch_summary(self.dispatch))
        return "\n".join(lines)


@dataclass
class HybridPipeline(ExecutorOwnerMixin):
    """Strategy + estimator + executor + classical head, fully instrumented.

    Executor lifecycle comes from :class:`ExecutorOwnerMixin`: ``close()``
    (or the ``with`` block) releases a :class:`ParallelExecutor` facade's
    pool, while a bare caller-supplied ``ExecutionRuntime`` -- possibly
    shared with other consumers -- is never shut down from here.
    """

    strategy: Strategy = None  # type: ignore[assignment]
    num_classes: int = 2
    estimator: str = "exact"
    shots: int = 1024
    snapshots: int = 512
    l2: float = 1.0
    executor: ParallelExecutor | ExecutionRuntime | None = None
    cluster: ClusterModel | None = None
    scheduling_policy: str = "lpt"
    # None = backend-appropriate default (see features.resolve_chunk_size).
    chunk_size: int | None = None
    seed: int = 0
    # Compiled execution is the system-layer default: the ensemble circuits
    # are fixed, so each is fused once and reused for every chunk/worker.
    # (Backends with gate-level noise ignore it; see supports_compile.)
    compile: str | int = "auto"
    # Execution regime: None = ideal statevector; DensityMatrixBackend /
    # MitigatedBackend run the same streamed sweep under noise / ZNE.
    backend: QuantumBackend | None = None
    report_: PipelineReport | None = field(default=None, repr=False)
    head_: object = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.strategy is None:
            raise ValueError("strategy is required")
        # One long-lived executor (persistent runtime) per pipeline: the
        # worker pool is created on the first sweep and reused by every
        # subsequent fit/predict until close().
        self.executor = self.executor or ParallelExecutor()

    # ------------------------------------------------------------ workload
    def circuit_tasks(self, num_samples: int) -> list[CircuitTask]:
        """The dispatch units a real cluster would receive.

        Priced by the same cost model (chunk x Ansatz depth x shot budget)
        that orders live dispatch, so the analytic projection and the real
        submission order agree by construction.
        """
        ansatz = self.strategy.ansatz
        if ansatz is not None and ansatz.num_gates == 0:
            # Only a genuinely empty circuit is skipped by the sweep; a
            # parameterless circuit with gates still runs (and costs).
            ansatz = None
        chunk = resolve_chunk_size(self.chunk_size, resolve_backend(self.backend))
        jobs = feature_jobs(self.strategy.num_ansatze, num_samples, chunk)
        # Gate count is binding-independent, so the unbound Ansatz prices
        # every instance without compiling anything just for a projection.
        programs = [ansatz] * self.strategy.num_ansatze
        return feature_circuit_tasks(
            jobs,
            programs,
            self.strategy.num_qubits,
            self.strategy.num_observables,
            self.estimator,
            self.shots,
            self.snapshots,
            self.backend,
        )

    # ----------------------------------------------------------------- fit
    def fit(self, angles: np.ndarray, y: np.ndarray) -> "HybridPipeline":
        timer = StageTimer()
        counter = Counter()
        angles = np.asarray(angles, dtype=float)
        y = np.asarray(y)

        with timer.stage("generate_features"):
            q_matrix, dispatch = generate_features(
                self.strategy,
                angles,
                estimator=self.estimator,
                shots=self.shots,
                snapshots=self.snapshots,
                executor=self.executor,
                chunk_size=self.chunk_size,
                seed=self.seed,
                compile=self.compile,
                dispatch_policy=self.scheduling_policy,
                return_report=True,
                backend=self.backend,
            )
        d, p = angles.shape[0], self.strategy.num_ansatze
        # Mitigated backends execute every logical circuit once per fold
        # scale (and draw shots at each scale), so resource accounting
        # multiplies by the backend's repetition factor.
        repetitions = resolve_backend(self.backend).circuit_repetitions
        counter.add("circuits_executed", p * d * repetitions)
        # Measurement budgets differ by estimator: direct measurement pays
        # ``shots`` per (data point, Ansatz, observable) = shots * Q.size,
        # while classical shadows pay ``snapshots`` per (data point, Ansatz)
        # -- the batch is reused across all q observables (Proposition 2).
        if self.estimator == "exact":
            shots_fired = 0
        elif self.estimator == "shots":
            shots_fired = self.shots * q_matrix.size * repetitions
        else:
            shots_fired = self.snapshots * d * p * repetitions
        counter.add("shots_fired", shots_fired)

        with timer.stage("fit_head"):
            if self.num_classes == 2:
                self.head_ = LogisticRegression(l2=self.l2).fit(q_matrix, y)
            else:
                self.head_ = SoftmaxRegression(
                    num_classes=self.num_classes, l2=self.l2
                ).fit(q_matrix, y)

        projected = None
        if self.cluster is not None:
            with timer.stage("cluster_projection"):
                projected, _ = self.cluster.makespan(
                    self.circuit_tasks(angles.shape[0]), self.scheduling_policy
                )

        self.report_ = PipelineReport(
            num_features=self.strategy.num_features,
            num_ansatze=self.strategy.num_ansatze,
            num_observables=self.strategy.num_observables,
            num_train=angles.shape[0],
            timer=timer,
            counter=counter,
            projected_makespan=projected,
            scheduling_policy=self.scheduling_policy if projected is not None else None,
            dispatch=dispatch,
        )
        return self

    # ------------------------------------------------------------- predict
    def _features(self, angles: np.ndarray) -> np.ndarray:
        return generate_features(
            self.strategy,
            np.asarray(angles, dtype=float),
            estimator=self.estimator,
            shots=self.shots,
            snapshots=self.snapshots,
            executor=self.executor,
            chunk_size=self.chunk_size,
            seed=self.seed,
            compile=self.compile,
            dispatch_policy=self.scheduling_policy,
            backend=self.backend,
        )

    def predict(self, angles: np.ndarray) -> np.ndarray:
        if self.head_ is None:
            raise RuntimeError("pipeline is not fitted")
        return self.head_.predict(self._features(angles))

    def score(self, angles: np.ndarray, y: np.ndarray) -> float:
        return accuracy(np.asarray(y), self.predict(angles))

    def loss(self, angles: np.ndarray, y: np.ndarray) -> float:
        if self.head_ is None:
            raise RuntimeError("pipeline is not fitted")
        return self.head_.loss(self._features(angles), np.asarray(y))
