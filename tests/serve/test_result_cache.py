"""Result cache: LRU order, TTL expiry, defensive copies, disabled mode."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serve.result_cache import ResultCache, result_key


def test_result_key_distinguishes_payload_and_seed():
    x = np.arange(6.0).reshape(1, 2, 3)
    base = result_key("g", x, 1)
    assert base == result_key("g", x.copy(), 1)
    assert base != result_key("g", x + 1e-300, 1)
    assert base != result_key("g", x, 2)
    assert base != result_key("other", x, 1)


def test_result_key_is_dtype_and_shape_sensitive():
    x = np.zeros((2, 3))
    assert result_key("g", x, None) != result_key("g", x.reshape(3, 2), None)
    assert result_key("g", x, None) != result_key(
        "g", np.zeros((2, 3), dtype=np.float32), None
    )


def test_lru_eviction_order():
    cache = ResultCache(maxsize=2)
    cache.put("a", np.array([1.0]))
    cache.put("b", np.array([2.0]))
    assert cache.get("a") is not None  # refresh "a"
    cache.put("c", np.array([3.0]))  # evicts "b", the least recent
    assert cache.get("b") is None
    assert cache.get("a") is not None
    assert cache.get("c") is not None
    info = cache.info()
    assert info.evictions == 1
    assert info.currsize == 2


def test_returned_arrays_are_copies():
    cache = ResultCache(maxsize=4)
    original = np.array([1.0, 2.0])
    cache.put("k", original)
    original[0] = 99.0  # caller mutates after put
    first = cache.get("k")
    assert first is not None and first[0] == 1.0
    first[1] = -5.0  # caller mutates a response
    second = cache.get("k")
    assert second is not None and second[1] == 2.0


def test_ttl_expiry_with_injected_clock():
    now = [0.0]
    cache = ResultCache(maxsize=4, ttl_s=10.0, clock=lambda: now[0])
    cache.put("k", np.array([1.0]))
    now[0] = 9.0
    assert cache.get("k") is not None
    now[0] = 20.1
    assert cache.get("k") is None
    info = cache.info()
    assert info.expirations == 1
    assert info.currsize == 0


def test_maxsize_zero_disables_storage():
    cache = ResultCache(maxsize=0)
    cache.put("k", np.array([1.0]))
    assert cache.get("k") is None
    assert len(cache) == 0


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError, match="maxsize"):
        ResultCache(maxsize=-1)
    with pytest.raises(ValueError, match="ttl_s"):
        ResultCache(maxsize=1, ttl_s=0)


def test_info_counts_hits_and_misses():
    cache = ResultCache(maxsize=2)
    assert cache.get("nope") is None
    cache.put("k", np.array([1.0]))
    assert cache.get("k") is not None
    info = cache.info()
    assert (info.hits, info.misses) == (1, 1)
    assert info.to_dict()["maxsize"] == 2
