"""Pre-flight: run the analyzers at job-build time, per the config knob.

``ExecutionConfig(preflight="warn"|"error"|"off")`` decides what happens
with the findings when an entry point (``generate_features``,
``QuantumDevice.run``...) is about to dispatch a sweep:

* ``"off"``   -- (default) no analysis, zero overhead;
* ``"warn"``  -- every finding becomes a :class:`PreflightWarning`;
* ``"error"`` -- error-severity findings raise :class:`PreflightError`
  *before any dispatch* (no pool submit, no state allocation); warnings
  and infos still warn.

The analysis itself is the same code the ``repro lint`` CLI and
``QuantumDevice.check`` run; this module only decides consequence.
"""

from __future__ import annotations

import warnings
from collections.abc import Iterable
from typing import TYPE_CHECKING, Any

from repro.analysis.diagnostics import DiagnosticReport
from repro.analysis.plan import lint_config
from repro.analysis.program import lint_circuit

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.config import ExecutionConfig, ServeConfig
    from repro.quantum.circuit import Circuit

__all__ = [
    "PREFLIGHT_MODES",
    "PreflightError",
    "PreflightWarning",
    "resolve_preflight",
    "run_preflight",
    "run_serve_preflight",
]

#: Legal values of the ``preflight`` config knob.
PREFLIGHT_MODES = ("off", "warn", "error")


class PreflightWarning(UserWarning):
    """One pre-flight finding surfaced as a warning (modes warn/error)."""


class PreflightError(ValueError):
    """Pre-flight rejection: the report's error-severity findings.

    Carries the full :class:`DiagnosticReport` as ``report`` so callers
    (and tests) can inspect codes instead of parsing the message.
    """

    def __init__(self, report: DiagnosticReport, owner: str) -> None:
        self.report = report
        lines = [d.render() for d in report.errors]
        super().__init__(
            f"{owner}: preflight rejected the job "
            f"({len(report.errors)} error(s)):\n" + "\n".join(lines)
        )


def resolve_preflight(knob: Any) -> str:
    """Validate the ``preflight`` config knob (``None`` is legacy "off")."""
    if knob is None:
        return "off"
    if knob not in PREFLIGHT_MODES:
        raise ValueError(
            f"preflight must be one of {PREFLIGHT_MODES}, got {knob!r}"
        )
    return str(knob)


def _backend_noise_model(config: ExecutionConfig) -> Any:
    """The noise model the plan will actually apply, if any.

    ``MitigatedBackend`` nests its noisy backend under ``.backend``; walk
    one level so ZNE plans lint the channels they fold.
    """
    backend = config.backend
    model = getattr(backend, "noise_model", None)
    if model is None:
        model = getattr(getattr(backend, "backend", None), "noise_model", None)
    return model


def run_preflight(
    config: ExecutionConfig,
    *,
    num_qubits: int | None = None,
    circuits: Iterable[Circuit] = (),
    owner: str = "preflight",
) -> DiagnosticReport:
    """Analyze ``config`` (+ the job's circuits) and act per its knob.

    Always returns the merged report; in mode ``"error"`` it raises
    :class:`PreflightError` first when any error-severity finding exists.
    Mode ``"off"`` short-circuits to an empty report without analyzing.
    """
    mode = resolve_preflight(getattr(config, "preflight", "off"))
    if mode == "off":
        return DiagnosticReport()
    report = lint_config(config, num_qubits=num_qubits)
    noise_model = _backend_noise_model(config)
    for circuit in circuits:
        report = report + lint_circuit(
            circuit, shards=config.shards, noise_model=noise_model
        )
    if mode == "error" and not report.ok:
        raise PreflightError(report, owner)
    for diagnostic in report:
        warnings.warn(
            f"{owner}: {diagnostic.render()}", PreflightWarning, stacklevel=3
        )
    return report


def run_serve_preflight(
    config: ServeConfig,
    *,
    num_qubits: int | None = None,
    circuits: Iterable[Circuit] = (),
    owner: str = "serve-preflight",
) -> DiagnosticReport:
    """The serving layer's pre-flight: serve-plan lint + program lint.

    The consequence knob is the *nested* execution config's ``preflight``
    (one knob governs both layers): ``"off"`` short-circuits, ``"warn"``
    warns per finding, ``"error"`` raises :class:`PreflightError` before
    the service starts or a template registers.
    """
    from repro.analysis.plan import lint_serve_config

    execution = config.execution
    assert execution is not None  # ServeConfig canonicalized it
    mode = resolve_preflight(execution.preflight)
    if mode == "off":
        return DiagnosticReport()
    report = lint_serve_config(config, num_qubits=num_qubits)
    noise_model = _backend_noise_model(execution)
    for circuit in circuits:
        report = report + lint_circuit(
            circuit, shards=execution.shards, noise_model=noise_model
        )
    if mode == "error" and not report.ok:
        raise PreflightError(report, owner)
    for diagnostic in report:
        warnings.warn(
            f"{owner}: {diagnostic.render()}", PreflightWarning, stacklevel=3
        )
    return report
