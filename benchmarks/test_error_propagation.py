"""E5 -- Theorems 3/4: error propagation from Q-matrix noise to the loss.

Sweeps the entry-wise perturbation magnitude ||Qhat - Q||_max and records
the realised loss difference Delta L_RMSE (Eq. 32) for both heads:

* pseudoinverse head (Theorem 3) -- sensitive to conditioning;
* l2-ball-constrained head (Theorem 4) -- the robust variant; Delta L must
  stay below ``2 sqrt(m) ||Qhat - Q||_max``.

This regenerates the papers' theory as a measured curve: bound vs realised.
"""

from __future__ import annotations

import numpy as np

from repro.core.features import generate_features
from repro.core.measurement_budget import (
    rmse_loss_difference,
    theorem3_required_entry_error,
    theorem4_required_entry_error,
)
from repro.core.strategies import ObservableConstruction


def run_sweep(split):
    rng = np.random.default_rng(0)
    strategy = ObservableConstruction(qubits=4, locality=1)
    angles = split.x_train[:80]
    q = generate_features(strategy, angles)
    m = q.shape[1]
    y = 2.0 * split.y_train[:80].astype(float) - 1.0

    magnitudes = np.array([1e-4, 1e-3, 1e-2, 5e-2, 1e-1])
    records = []
    for mag in magnitudes:
        deltas_pinv, deltas_con = [], []
        for _ in range(3):
            noise = rng.uniform(-mag, mag, size=q.shape)
            deltas_pinv.append(rmse_loss_difference(q, q + noise, y, constrained=False))
            deltas_con.append(rmse_loss_difference(q, q + noise, y, constrained=True))
        records.append(
            {
                "mag": mag,
                "pinv": float(np.mean(deltas_pinv)),
                "constrained": float(np.mean(deltas_con)),
                "thm4_bound": 2.0 * np.sqrt(m) * mag,
            }
        )
    return q, y, records


def test_error_propagation(benchmark, small_split):
    q, y, records = benchmark.pedantic(
        run_sweep, args=(small_split,), rounds=1, iterations=1
    )
    m = q.shape[1]

    print("\n=== Theorems 3/4: Delta L_RMSE vs ||Qhat - Q||_max ===")
    print(f"{'mag':>8} {'pinv head':>12} {'constrained':>12} {'thm4 bound':>12}")
    for r in records:
        print(
            f"{r['mag']:>8.0e} {r['pinv']:>12.5f} {r['constrained']:>12.5f} "
            f"{r['thm4_bound']:>12.5f}"
        )

    # Theorem 4: realised Delta L below the 2 sqrt(m) * mag bound, always.
    for r in records:
        assert r["constrained"] <= r["thm4_bound"] + 1e-9

    # Loss difference is monotone-ish in the perturbation magnitude
    # (comparing the extremes; middle points may fluctuate).
    assert records[0]["constrained"] <= records[-1]["constrained"] + 1e-9

    # Theorem 3: a perturbation within the theorem's budget keeps
    # Delta L below the requested epsilon.
    epsilon = 0.2
    budget = theorem3_required_entry_error(q, y, epsilon)
    rng = np.random.default_rng(1)
    noise = rng.uniform(-budget, budget, size=q.shape)
    assert rmse_loss_difference(q, q + noise, y, constrained=False) < epsilon

    # Theorem 4 budget formula agrees with the bound's inversion.
    assert theorem4_required_entry_error(m, 0.5) == 0.5 / (2 * np.sqrt(m))

    # The constrained head is the more robust one at large perturbations
    # (the Sec. VI.B motivation for the l2 constraint).
    assert records[-1]["constrained"] <= records[-1]["pinv"] + 0.05
