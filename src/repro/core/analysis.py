"""Q-matrix diagnostics: the quantities Theorem 3's assumptions live on.

Sec. VI.B's measurement count hinges on ``kappa_Q = ||Q|| / sigma_min(Q)
in O(1)``, ``||Y||_2 in O(sqrt d)`` and ``||Q|| in Omega(sqrt d)``.  These
helpers compute the realised values so experiments can check whether a
given strategy/dataset sits in the regime the theory assumes -- and expose
feature-redundancy measures (effective rank) that explain why the hybrid
ensembles overfit (Table III test-accuracy drop).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["QMatrixDiagnostics", "diagnose_q_matrix", "effective_rank"]


def effective_rank(singular_values: np.ndarray) -> float:
    """Shannon effective rank: ``exp(H(p))`` with ``p = s / sum(s)``.

    Between 1 (rank-one energy) and the true rank; robust to near-zero
    singular values, unlike a hard threshold.
    """
    s = np.asarray(singular_values, dtype=float)
    s = s[s > 0]
    if s.size == 0:
        return 0.0
    p = s / s.sum()
    entropy = float(-(p * np.log(p)).sum())
    return float(np.exp(entropy))


@dataclass(frozen=True)
class QMatrixDiagnostics:
    """Spectral summary of a feature matrix."""

    shape: tuple[int, int]
    spectral_norm: float
    sigma_min: float
    condition_number: float
    rank: int
    effective_rank: float
    coherence: float  # max abs entry (<= 1 for Pauli features)

    def theorem3_regime(self, y: np.ndarray) -> dict[str, float]:
        """The three Sec. VI.B ratios, each O(1) when the assumptions hold."""
        d = self.shape[0]
        y = np.asarray(y, dtype=float)
        return {
            "kappa_Q": self.condition_number,
            "norm_Y_over_sqrt_d": float(np.linalg.norm(y) / np.sqrt(d)),
            "norm_Q_over_sqrt_d": self.spectral_norm / np.sqrt(d),
        }


def diagnose_q_matrix(q: np.ndarray, rcond: float | None = None) -> QMatrixDiagnostics:
    """Compute the full diagnostic record for a feature matrix ``q``."""
    q = np.asarray(q, dtype=float)
    if q.ndim != 2:
        raise ValueError("q must be 2-D")
    sv = np.linalg.svd(q, compute_uv=False)
    if rcond is None:
        rcond = max(q.shape) * np.finfo(float).eps
    cutoff = rcond * (sv[0] if sv.size else 0.0)
    nonzero = sv[sv > cutoff]
    sigma_min = float(nonzero[-1]) if nonzero.size else 0.0
    spectral = float(sv[0]) if sv.size else 0.0
    return QMatrixDiagnostics(
        shape=(q.shape[0], q.shape[1]),
        spectral_norm=spectral,
        sigma_min=sigma_min,
        condition_number=spectral / sigma_min if sigma_min > 0 else np.inf,
        rank=int(nonzero.size),
        effective_rank=effective_rank(sv),
        coherence=float(np.max(np.abs(q))) if q.size else 0.0,
    )
