"""Logistic / softmax regression tests."""

import numpy as np
import pytest

from repro.ml.logistic import LogisticRegression, SoftmaxRegression
from repro.ml.losses import sigmoid
from repro.ml.metrics import accuracy


def separable(rng, n=50, dim=3, gap=2.0):
    x = np.vstack([rng.normal(-gap, 1.0, (n, dim)), rng.normal(gap, 1.0, (n, dim))])
    y = np.array([0] * n + [1] * n)
    return x, y


def test_learns_separable_data():
    rng = np.random.default_rng(0)
    x, y = separable(rng)
    model = LogisticRegression().fit(x, y)
    assert accuracy(y, model.predict(x)) == 1.0
    assert model.loss(x, y) < 0.1


def test_probability_calibration_midpoint():
    """A point on the decision boundary gets probability ~0.5."""
    rng = np.random.default_rng(1)
    x, y = separable(rng)
    model = LogisticRegression().fit(x, y)
    p = model.predict_proba(np.zeros((1, 3)))
    assert 0.2 < p[0] < 0.8


def test_l2_penalty_shrinks_weights():
    rng = np.random.default_rng(2)
    x, y = separable(rng)
    weak = LogisticRegression(l2=1e-3).fit(x, y)
    strong = LogisticRegression(l2=100.0).fit(x, y)
    assert np.linalg.norm(strong.coef_) < np.linalg.norm(weak.coef_)


def test_gradient_zero_at_optimum():
    """L-BFGS solution satisfies the stationarity condition."""
    rng = np.random.default_rng(3)
    x = rng.normal(size=(60, 4))
    y = (rng.random(60) < sigmoid(x @ np.array([1.0, -1.0, 0.5, 0.0]))).astype(float)
    model = LogisticRegression(l2=1.0, fit_intercept=False).fit(x, y)
    p = sigmoid(x @ model.coef_)
    grad = x.T @ (p - y) + 1.0 * model.coef_
    assert np.linalg.norm(grad) < 1e-4


def test_binary_label_validation():
    with pytest.raises(ValueError):
        LogisticRegression().fit(np.ones((3, 1)), np.array([0, 1, 2]))


def test_softmax_matches_binary_logistic():
    """2-class softmax and binary logistic agree on predictions."""
    rng = np.random.default_rng(4)
    x, y = separable(rng)
    binary = LogisticRegression().fit(x, y)
    multi = SoftmaxRegression(num_classes=2).fit(x, y)
    assert np.array_equal(binary.predict(x), multi.predict(x))


def test_softmax_multiclass_learning():
    rng = np.random.default_rng(5)
    centres = np.array([[-3, 0], [3, 0], [0, 4]])
    x = np.vstack([rng.normal(c, 0.5, (30, 2)) for c in centres])
    y = np.repeat([0, 1, 2], 30)
    model = SoftmaxRegression(num_classes=3).fit(x, y)
    assert accuracy(y, model.predict(x)) > 0.95
    probs = model.predict_proba(x)
    assert np.allclose(probs.sum(axis=1), 1.0)


def test_softmax_label_range_validation():
    with pytest.raises(ValueError):
        SoftmaxRegression(num_classes=2).fit(np.ones((2, 1)), np.array([0, 5]))


def test_unfitted_errors():
    with pytest.raises(RuntimeError):
        LogisticRegression().predict(np.ones((1, 1)))
    with pytest.raises(RuntimeError):
        SoftmaxRegression().predict(np.ones((1, 1)))


def test_loss_is_mean_bce():
    rng = np.random.default_rng(6)
    x, y = separable(rng, n=20)
    model = LogisticRegression().fit(x, y)
    from repro.ml.losses import bce_loss

    assert model.loss(x, y) == pytest.approx(
        bce_loss(y.astype(float), model.predict_proba(x))
    )
