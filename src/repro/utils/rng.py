"""Deterministic random-number-generator plumbing.

Every stochastic component in the library accepts a ``seed`` argument that may
be an ``int``, a :class:`numpy.random.Generator`, or ``None``.  Centralising
the coercion here keeps experiment scripts reproducible: a single integer seed
at the top of a benchmark fans out deterministically to every subsystem.
"""

from __future__ import annotations

import numpy as np

__all__ = ["as_rng", "spawn_rngs"]


def as_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Passing an existing generator returns it unchanged so that callers can
    thread one generator through a pipeline without reseeding.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: int | np.random.Generator | None, n: int) -> list[np.random.Generator]:
    """Derive ``n`` statistically independent child generators.

    Used when fanning work out to parallel workers: each worker receives its
    own stream, so results are independent of the execution schedule (a
    requirement for the HPC executor backends to be interchangeable).
    """
    if n < 0:
        raise ValueError(f"cannot spawn {n} generators")
    root = as_rng(seed)
    return [np.random.default_rng(s) for s in root.bit_generator.seed_seq.spawn(n)] \
        if hasattr(root.bit_generator, "seed_seq") and root.bit_generator.seed_seq is not None \
        else [np.random.default_rng(root.integers(0, 2**63)) for _ in range(n)]
