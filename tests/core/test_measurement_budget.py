"""Measurement-budget tests: Propositions 1-2, Theorems 3-4, Table II."""

import numpy as np
import pytest

from repro.core.measurement_budget import (
    proposition1_direct_measurements,
    proposition2_shadow_measurements,
    rmse_loss_difference,
    table2_grid,
    table2_row,
    theorem3_required_entry_error,
    theorem4_required_entry_error,
)


def test_prop1_scalings():
    base = proposition1_direct_measurements(10, 100, 0.1, 0.05)
    assert proposition1_direct_measurements(20, 100, 0.1, 0.05) > 2 * base * 0.9
    assert proposition1_direct_measurements(10, 100, 0.05, 0.05) > 3 * base
    assert proposition1_direct_measurements(10, 100, 0.1, 0.01) > base


def test_prop2_scalings():
    base = proposition2_shadow_measurements(5, 100, 4.0, 0.1, 0.05, q=2)
    # Doubling q (same p, same norms) only grows logarithmically.
    doubled_q = proposition2_shadow_measurements(5, 100, 4.0, 0.1, 0.05, q=4)
    assert doubled_q < 1.5 * base
    # Doubling p doubles the shadow batches.
    doubled_p = proposition2_shadow_measurements(10, 100, 4.0, 0.1, 0.05, q=2)
    assert doubled_p > 1.8 * base


def test_shadows_win_iff_local_asymptotic():
    """Table II bold pattern (asymptotic): direct/shadows = q / ||O||_S^2,
    so shadows win exactly when the shared observable count exceeds the
    worst shadow norm."""
    row_local = table2_row(
        "obs", p=1, q=67, d=100, epsilon=0.1, delta=0.05,
        max_shadow_norm_sq=16.0, asymptotic=True,
    )
    assert row_local.winner == "shadows"
    row_global = table2_row(
        "ansatz", p=129, q=1, d=100, epsilon=0.1, delta=0.05,
        max_shadow_norm_sq=4.0**10, asymptotic=True,
    )
    assert row_global.winner == "direct"


def test_concrete_constants_shift_crossover():
    """With the real Hoeffding/median-of-means constants the shadows
    advantage needs a larger q (the honest engineering caveat)."""
    row = table2_row(
        "obs", p=1, q=67, d=100, epsilon=0.1, delta=0.05, max_shadow_norm_sq=16.0
    )
    assert row.winner == "direct"  # 34 * 16 > 67
    big_q = table2_row(
        "obs", p=1, q=1000, d=100, epsilon=0.1, delta=0.05, max_shadow_norm_sq=16.0
    )
    assert big_q.winner == "shadows"


def test_table2_grid_structure():
    rows = table2_grid(
        k=8, n=4, d=100, order=1, locality=2, epsilon=0.2, delta=0.05, asymptotic=True
    )
    assert [r.strategy for r in rows] == [
        "ansatz_expansion",
        "observable_construction",
        "hybrid",
        "local_hybrid",
    ]
    ansatz = rows[0]
    assert (ansatz.p, ansatz.q) == (17, 1)
    assert ansatz.winner == "direct"  # no multi-observable reuse to exploit
    obs = rows[1]
    assert (obs.p, obs.q) == (1, 67)
    assert obs.winner == "shadows"
    # The paper's bold pattern across the grid: direct, shadows, direct, shadows.
    assert [r.winner for r in rows] == ["direct", "shadows", "direct", "shadows"]


def test_theorem4_formula():
    assert theorem4_required_entry_error(4, 0.2) == pytest.approx(0.05)
    with pytest.raises(ValueError):
        theorem4_required_entry_error(0, 0.1)
    with pytest.raises(ValueError):
        theorem4_required_entry_error(4, -0.1)


def test_theorem3_bound_positive_and_monotone():
    rng = np.random.default_rng(0)
    q = rng.normal(size=(30, 5))
    y = rng.normal(size=30)
    small = theorem3_required_entry_error(q, y, 0.01)
    large = theorem3_required_entry_error(q, y, 1.0)
    assert 0 < small <= large


def test_theorem4_guarantee_empirical():
    """Perturb Q within the Theorem 4 budget; the realised loss difference
    must stay below epsilon (constrained head)."""
    rng = np.random.default_rng(1)
    d, m = 60, 8
    q = rng.uniform(-1, 1, size=(d, m))
    alpha = rng.normal(size=m)
    alpha /= 2 * np.linalg.norm(alpha)
    y = q @ alpha + 0.05 * rng.normal(size=d)
    epsilon = 0.25
    budget = theorem4_required_entry_error(m, epsilon)
    for _ in range(5):
        noise = rng.uniform(-budget, budget, size=(d, m))
        delta_loss = rmse_loss_difference(q, q + noise, y, constrained=True)
        assert delta_loss < epsilon


def test_theorem3_guarantee_empirical():
    """Same for the pseudoinverse head under the (tighter) Theorem 3 budget."""
    rng = np.random.default_rng(2)
    d, m = 40, 4
    q = rng.uniform(-1, 1, size=(d, m)) + 0.1  # well-conditioned
    y = q @ rng.normal(size=m)
    epsilon = 0.3
    budget = theorem3_required_entry_error(q, y, epsilon)
    assert budget > 0
    for _ in range(5):
        noise = rng.uniform(-budget, budget, size=(d, m))
        delta_loss = rmse_loss_difference(q, q + noise, y, constrained=False)
        assert delta_loss < epsilon


def test_loss_difference_nonnegative():
    """Refitting on corrupted features cannot beat the optimum on the truth."""
    rng = np.random.default_rng(3)
    q = rng.normal(size=(30, 3))
    y = rng.normal(size=30)
    noise = 0.01 * rng.normal(size=q.shape)
    assert rmse_loss_difference(q, q + noise, y) >= -1e-12


def test_validation():
    with pytest.raises(ValueError):
        proposition1_direct_measurements(0, 10, 0.1, 0.05)
    with pytest.raises(ValueError):
        proposition1_direct_measurements(10, 10, 0.1, 2.0)
    with pytest.raises(ValueError):
        proposition2_shadow_measurements(0, 10, 4.0, 0.1, 0.05, q=2)
    with pytest.raises(ValueError):
        proposition2_shadow_measurements(1, 10, -1.0, 0.1, 0.05, q=2)
    with pytest.raises(ValueError):
        proposition2_shadow_measurements(1, 10, 4.0, 0.1, 0.05)  # neither m nor q
