"""CQS linear-system solving and the post-variational bridge (Sec. III.E).

Solves a random Pauli-sparse system ``A x = b`` with the classical
combination of quantum states: Ansatz-tree candidate unitaries, convex
classical coefficients, monotone residual.  Then demonstrates the paper's
identity L_Ham = L_MAE (ground truth 0) = sum_j alpha_j tr(O_j |b><b|),
i.e. CQS is a problem-inspired post-variational method.

Run:  python examples/linear_system_cqs.py
"""

import numpy as np

from repro.core import decompose_hamiltonian_loss, solve_cqs
from repro.data import random_linear_system
from repro.ml import mae_loss, rmse_loss


def main() -> None:
    a, b, x_true = random_linear_system(3, num_terms=3, seed=4)
    print(f"A = {a}")
    print(f"||b|| = {np.linalg.norm(b):.3f},  dim = {b.size}")

    print("\nAnsatz-tree growth:")
    for max_terms in (1, 2, 4, 8, 16):
        result = solve_cqs(a, b, max_terms=max_terms)
        print(
            f"  m_CQS={result.num_terms:>3}  residual={result.residual_norm:.3e}  "
            f"L_Ham={result.hamiltonian_loss:.3e}"
        )

    result = solve_cqs(a, b, max_terms=16)
    error = np.linalg.norm(result.x - x_true)
    print(f"\nsolution error ||x - x_true|| = {error:.3e}")

    alphas, observables = decompose_hamiltonian_loss(a, b, result)
    rho_b = np.outer(b, b.conj())
    combo = float(
        sum(al * np.trace(o @ rho_b).real for al, o in zip(alphas, observables, strict=True))
    )
    print("\nSec. III.E identity (post-variational view of CQS):")
    print(f"  L_Ham                    = {result.hamiltonian_loss:.6e}")
    print(f"  sum_j alpha_j tr(O_j rho_b) = {combo:.6e}")
    print(f"  L_MAE (truth 0)          = {mae_loss([0.0], [combo]):.6e}")
    print(f"  L_RMSE (truth 0)         = {rmse_loss([0.0], [combo]):.6e}")
    print(f"  observables used: {len(alphas)} (m_CQS^2-style counting)")


if __name__ == "__main__":
    main()
