"""E13 -- persistent execution runtime: pool reuse across repeated sweeps.

The hybrid pipeline calls ``evaluate_features`` many times per experiment
(fit, predict on train, predict on test, cross-validation folds...).  The
pre-runtime executor rebuilt its worker pool on every call; the persistent
:class:`~repro.hpc.runtime.ExecutionRuntime` builds it once and reuses it.
This benchmark measures exactly that delta on the reference 8-qubit
workload with the portable ``spawn``-based process backend (what a
production deployment uses -- fork is unsafe with threaded parents), where
per-call pool construction pays interpreter start + numpy import every
sweep.

Acceptance bar: >= 1.5x wall-clock improvement over ``SWEEPS``
consecutive sweeps.  Results land in ``BENCH_runtime.json`` at the repo
root so the perf trajectory is tracked across PRs -- written only under
``BENCH_WRITE=1`` (opt-in: a plain local benchmark run must never dirty
the working tree).

Smoke mode (``RUNTIME_BENCH_SMOKE=1``, used by the CI runtime-smoke job)
shrinks the workload and asserts completion only, not timing.
"""

from __future__ import annotations

import time

import numpy as np

from benchmarks.conftest import env_flag, write_bench_record
from repro.core.ansatz import hardware_efficient_ansatz
from repro.core.features import evaluate_features
from repro.core.strategies import AnsatzExpansion
from repro.data.encoding import encode_batch
from repro.hpc.runtime import ExecutionRuntime

SMOKE = env_flag("RUNTIME_BENCH_SMOKE")

NUM_QUBITS = 8
LAYERS = 1
SAMPLES = 8 if SMOKE else 16
SWEEPS = 2 if SMOKE else 8
WORKERS = 2
CHUNK = 8


def build_workload():
    """8-qubit Ansatz-expansion strategy + encoded sample batch."""
    circuit = hardware_efficient_ansatz(NUM_QUBITS, LAYERS)
    strategy = AnsatzExpansion(circuit=circuit, order=1)
    rng = np.random.default_rng(0)
    angles = rng.uniform(0, 2 * np.pi, size=(SAMPLES, 4, NUM_QUBITS))
    return strategy, encode_batch(angles)


def sweep(strategy, states, runtime):
    return evaluate_features(
        strategy,
        states,
        executor=runtime,
        chunk_size=CHUNK,
        compile="auto",
        dispatch_policy="lpt",
    )


def run_benchmark():
    strategy, states = build_workload()

    # Baseline: the pre-runtime pattern -- a fresh pool per sweep.
    start = time.perf_counter()
    per_call_results = []
    for _ in range(SWEEPS):
        with ExecutionRuntime("process", WORKERS, start_method="spawn") as runtime:
            per_call_results.append(sweep(strategy, states, runtime))
    t_per_call = time.perf_counter() - start

    # Persistent: one pool serves every sweep.
    start = time.perf_counter()
    with ExecutionRuntime("process", WORKERS, start_method="spawn") as runtime:
        persistent_results = [sweep(strategy, states, runtime) for _ in range(SWEEPS)]
        pools = runtime.pools_created
    t_persistent = time.perf_counter() - start

    max_err = max(
        float(np.abs(a - b).max())
        for a, b in zip(per_call_results, persistent_results, strict=True)
    )
    return {
        "benchmark": "runtime_persistence",
        "workload": {
            "num_qubits": NUM_QUBITS,
            "ansatz_layers": LAYERS,
            "ansatz_gates": strategy.ansatz.num_gates,
            "num_ansatze": strategy.num_ansatze,
            "samples": SAMPLES,
            "chunk_size": CHUNK,
            "sweeps": SWEEPS,
            "backend": "process",
            "start_method": "spawn",
            "max_workers": WORKERS,
            "dispatch_policy": "lpt",
            "smoke": SMOKE,
        },
        "per_call_pool_s": t_per_call,
        "persistent_pool_s": t_persistent,
        "speedup": t_per_call / t_persistent,
        "pools_created_persistent": pools,
        "max_abs_diff": max_err,
    }


def test_persistent_pool_beats_per_call_pools():
    result = run_benchmark()
    # Opt-in only (BENCH_WRITE=1): unsolicited local runs must not churn
    # the tracked cross-PR perf record.
    write_bench_record("BENCH_runtime.json", result)

    print("\n=== E13: persistent runtime vs per-call pools ===")
    w = result["workload"]
    print(
        f"workload: {w['num_qubits']} qubits, {w['num_ansatze']} Ansatz instances, "
        f"{w['samples']} samples, {w['sweeps']} sweeps, "
        f"{w['backend']}({w['start_method']}) x{w['max_workers']}"
    )
    print(
        f"per-call pools {result['per_call_pool_s']:.2f}s  "
        f"persistent pool {result['persistent_pool_s']:.2f}s  "
        f"speedup {result['speedup']:.2f}x  "
        f"(max |diff| {result['max_abs_diff']:.1e})"
    )

    # Correctness: pool lifetime must not change the numbers (exact
    # estimator => bit-for-bit).
    assert result["max_abs_diff"] == 0.0
    assert result["pools_created_persistent"] == 1
    if not SMOKE:
        # The tentpole acceptance bar: pool reuse is >= 1.5x over SWEEPS
        # consecutive sweeps.
        assert result["speedup"] >= 1.5
