"""Circuit pruning heuristics (paper Sec. IV.A and IV.C).

Two tests decide whether the +-pi/2 pair of circuits for parameter ``u`` can
be dropped from the ensemble:

* **Gradient pruning** (Eq. 17): if the mean squared difference of the
  shifted expectations over the data is small, the gradient on theta_u is
  small everywhere and the pair (and all higher-order shifts through u)
  contributes little.
* **Fidelity pruning** (Eqs. 21-25): the observable-free variant for the
  hybrid strategy -- if ``F(rho(x, theta + pi/2 e_u), rho(x, theta - pi/2
  e_u))`` is close to 1 for all data, every observable's shifted difference
  is bounded by ``4(1 - F)`` and the pair is dropped without measuring any
  observable.

Both return the surviving :class:`ShiftConfiguration` list so strategies can
be rebuilt with a reduced ensemble; benchmark E9 sweeps the thresholds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.shifts import ShiftConfiguration
from repro.quantum.circuit import Circuit
from repro.quantum.observables import PauliString, expectation
from repro.quantum.statevector import fidelity, run_circuit

__all__ = ["PruningReport", "gradient_prune", "fidelity_prune", "apply_pruning"]


@dataclass(frozen=True)
class PruningReport:
    """Per-parameter scores and the decision threshold used."""

    scores: np.ndarray  # one score per parameter index
    threshold: float
    pruned_parameters: tuple[int, ...]

    @property
    def num_pruned(self) -> int:
        return len(self.pruned_parameters)


def _shifted_pair_states(
    circuit: Circuit, states: np.ndarray, base: np.ndarray, u: int
) -> tuple[np.ndarray, np.ndarray]:
    plus = base.copy()
    minus = base.copy()
    plus[u] += np.pi / 2
    minus[u] -= np.pi / 2
    return (
        run_circuit(circuit.bind(plus), state=states),
        run_circuit(circuit.bind(minus), state=states),
    )


def gradient_prune(
    circuit: Circuit,
    states: np.ndarray,
    observable: PauliString,
    threshold: float,
    base_parameters: np.ndarray | None = None,
) -> PruningReport:
    """Eq. 17 test: MSE of shifted-expectation differences per parameter.

    ``states`` are the encoded data states rho(x_i); a parameter is pruned
    when its score falls below ``threshold``.
    """
    k = circuit.num_parameters
    base = np.zeros(k) if base_parameters is None else np.asarray(base_parameters, float)
    scores = np.empty(k)
    for u in range(k):
        psi_plus, psi_minus = _shifted_pair_states(circuit, states, base, u)
        diff = expectation(psi_plus, observable) - expectation(psi_minus, observable)
        scores[u] = float(np.mean(np.square(diff)))
    pruned = tuple(int(u) for u in range(k) if scores[u] < threshold)
    return PruningReport(scores=scores, threshold=threshold, pruned_parameters=pruned)


def fidelity_prune(
    circuit: Circuit,
    states: np.ndarray,
    threshold: float,
    base_parameters: np.ndarray | None = None,
) -> PruningReport:
    """Eq. 25 test: prune when ``4 * (1 - mean fidelity)`` is small.

    The score is the paper's bound on the squared expectation difference, so
    the same threshold scale as :func:`gradient_prune` applies, and the
    guarantee ``score_grad <= score_fid`` holds per Eq. 23-25 (tested).
    """
    k = circuit.num_parameters
    base = np.zeros(k) if base_parameters is None else np.asarray(base_parameters, float)
    scores = np.empty(k)
    for u in range(k):
        psi_plus, psi_minus = _shifted_pair_states(circuit, states, base, u)
        f = np.asarray(fidelity(psi_plus, psi_minus))
        scores[u] = float(np.mean(4.0 * (1.0 - f)))
    pruned = tuple(int(u) for u in range(k) if scores[u] < threshold)
    return PruningReport(scores=scores, threshold=threshold, pruned_parameters=pruned)


def apply_pruning(
    configs: list[ShiftConfiguration], pruned_parameters: tuple[int, ...]
) -> list[ShiftConfiguration]:
    """Drop every configuration that shifts a pruned parameter.

    Sec. IV.A: "further higher-order gradients based on the gradient circuits
    would also be small" -- so the subset test is on membership, killing all
    orders through the pruned coordinates.  The order-0 base circuit always
    survives.
    """
    dead = set(pruned_parameters)
    return [c for c in configs if not (set(c.subset) & dead)]
