"""Shot-allocation tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hpc.shotalloc import allocate_shots


@given(total=st.integers(0, 10_000), m=st.integers(1, 50))
@settings(max_examples=80)
def test_uniform_allocation_spends_exact_budget(total, m):
    shots = allocate_shots(total, m)
    assert shots.sum() == total
    assert shots.min() >= 0
    assert shots.max() - shots.min() <= 1


@given(
    total=st.integers(0, 10_000),
    coeffs=st.lists(st.floats(0.0, 10.0), min_size=1, max_size=20),
)
@settings(max_examples=60)
def test_weighted_allocation_spends_exact_budget(total, coeffs):
    shots = allocate_shots(total, len(coeffs), coefficients=np.array(coeffs), policy="weighted")
    assert shots.sum() == total
    assert np.all(shots >= 0)


def test_weighted_proportionality():
    shots = allocate_shots(100, 3, coefficients=[1.0, 2.0, 7.0], policy="weighted")
    assert list(shots) == [10, 20, 70]


def test_variance_allocation_neyman():
    """Neyman: n_j proportional to |c_j| sigma_j."""
    shots = allocate_shots(
        120,
        2,
        coefficients=[1.0, 1.0],
        variances=[1.0, 4.0],
        policy="variance",
    )
    assert list(shots) == [40, 80]


def test_zero_weights_fall_back_to_uniform():
    shots = allocate_shots(10, 2, coefficients=[0.0, 0.0], policy="weighted")
    assert list(shots) == [5, 5]


def test_variance_reduction_of_weighted_allocation():
    """For sum_j c_j <P_j>, weighted allocation gives lower estimator
    variance than uniform under equal per-shot variances."""
    coeffs = np.array([1.0, 1.0, 8.0])
    total = 900
    uniform = allocate_shots(total, 3, policy="uniform")
    weighted = allocate_shots(total, 3, coefficients=coeffs, policy="weighted")

    def estimator_variance(shots):
        return sum(c**2 / s for c, s in zip(coeffs, shots, strict=True))

    assert estimator_variance(weighted) < estimator_variance(uniform)


def test_validation():
    with pytest.raises(ValueError):
        allocate_shots(-1, 3)
    with pytest.raises(ValueError):
        allocate_shots(10, 0)
    with pytest.raises(ValueError):
        allocate_shots(10, 2, policy="bogus")
    with pytest.raises(ValueError):
        allocate_shots(10, 2, policy="weighted")  # missing coefficients
    with pytest.raises(ValueError):
        allocate_shots(10, 2, coefficients=[1, 1], policy="variance")  # missing variances
    with pytest.raises(ValueError):
        allocate_shots(10, 2, coefficients=[1, 1], variances=[-1, 1], policy="variance")
