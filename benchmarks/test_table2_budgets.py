"""E3 -- paper Table II: measurement upper bounds per design principle.

Prints the four-row grid (direct vs classical shadows) in both the paper's
asymptotic form and with explicit constants, for the paper's concrete
configuration (k=8 parameters, n=4 qubits, d=400 data points).  The bold
pattern asserted: direct wins for Ansatz expansion and the generic hybrid,
shadows win for observable construction and the L-local hybrid.
"""

from __future__ import annotations

import numpy as np

from repro.core.measurement_budget import table2_grid


def run_grids():
    asym = table2_grid(
        k=8, n=4, d=400, order=1, locality=2, epsilon=0.1, delta=0.05, asymptotic=True
    )
    concrete = table2_grid(
        k=8, n=4, d=400, order=1, locality=2, epsilon=0.1, delta=0.05, asymptotic=False
    )
    return asym, concrete


def test_table2(benchmark):
    asym, concrete = benchmark.pedantic(run_grids, rounds=1, iterations=1)

    print("\n=== Table II reproduction (measurement bounds, k=8 n=4 d=400) ===")
    for label, rows in (("asymptotic (paper form)", asym), ("explicit constants", concrete)):
        print(f"-- {label} --")
        print(f"{'strategy':<26} {'p':>5} {'q':>5} {'direct':>14} {'shadows':>14}  winner")
        for r in rows:
            print(
                f"{r.strategy:<26} {r.p:>5} {r.q:>5} {r.direct:>14.3e} "
                f"{r.shadows:>14.3e}  {r.winner}"
            )

    # The paper's bold pattern (asymptotic).
    assert [r.winner for r in asym] == ["direct", "shadows", "direct", "shadows"]

    # Asymptotic ratio identity: direct/shadows = q / ||O||_S^2.
    obs_row = asym[1]
    np.testing.assert_allclose(obs_row.direct / obs_row.shadows, obs_row.q / 16.0, rtol=1e-6)

    # Budgets grow with m: hybrid > observable-only > ansatz-only (direct).
    assert asym[2].direct > asym[1].direct > asym[0].direct

    # Explicit constants preserve the global-observable conclusion.
    assert concrete[0].winner == "direct"
    assert concrete[2].winner == "direct"
