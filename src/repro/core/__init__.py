"""Core library: the paper's post-variational method end to end."""

from repro.core.ansatz import fig8_ansatz, hardware_efficient_ansatz
from repro.core.shifts import (
    ShiftConfiguration,
    count_shift_configurations,
    enumerate_shift_configurations,
)
from repro.core.strategies import (
    AnsatzExpansion,
    HybridStrategy,
    ObservableConstruction,
    Strategy,
    strategy_from_name,
)
from repro.core.features import (
    evaluate_features,
    feature_circuit_tasks,
    feature_jobs,
    generate_features,
    iter_feature_blocks,
)
from repro.core.pruning import apply_pruning, fidelity_prune, gradient_prune
from repro.core.model import PostVariationalClassifier, PostVariationalRegressor
from repro.core.variational import VariationalClassifier
from repro.core.measurement_budget import (
    proposition1_direct_measurements,
    proposition2_shadow_measurements,
    rmse_loss_difference,
    table2_grid,
    table2_row,
    theorem3_required_entry_error,
    theorem4_required_entry_error,
)
from repro.core.cqs import (
    CQSResult,
    ansatz_tree_unitaries,
    decompose_hamiltonian_loss,
    hamiltonian_observable,
    solve_cqs,
)
from repro.core.pipeline import HybridPipeline, PipelineReport
from repro.core.decomposition import (
    circuit_unitary,
    decomposition_weight_profile,
    heisenberg_observable,
    truncate_by_locality,
    truncate_by_weight,
)
from repro.core.analysis import QMatrixDiagnostics, diagnose_q_matrix, effective_rank
from repro.core.noisy_features import generate_features_noisy
from repro.core.reuploading import ReuploadingClassifier
from repro.core.barren import GradientVarianceResult, barren_plateau_sweep, gradient_variance
from repro.core.expressibility import (
    entangling_capability,
    expressibility_kl,
    haar_fidelity_pdf,
    meyer_wallach_q,
)
from repro.core.kernels import QuantumKernelClassifier, fidelity_kernel
from repro.core.distributed_pipeline import (
    SpmdFitResult,
    fit_logistic_spmd,
    generate_features_spmd,
)
from repro.core.selection import GreedySelectionResult, greedy_forward_selection

__all__ = [
    "fig8_ansatz",
    "hardware_efficient_ansatz",
    "ShiftConfiguration",
    "count_shift_configurations",
    "enumerate_shift_configurations",
    "AnsatzExpansion",
    "HybridStrategy",
    "ObservableConstruction",
    "Strategy",
    "strategy_from_name",
    "evaluate_features",
    "feature_circuit_tasks",
    "feature_jobs",
    "iter_feature_blocks",
    "generate_features",
    "apply_pruning",
    "fidelity_prune",
    "gradient_prune",
    "PostVariationalClassifier",
    "PostVariationalRegressor",
    "VariationalClassifier",
    "proposition1_direct_measurements",
    "proposition2_shadow_measurements",
    "rmse_loss_difference",
    "table2_grid",
    "table2_row",
    "theorem3_required_entry_error",
    "theorem4_required_entry_error",
    "CQSResult",
    "ansatz_tree_unitaries",
    "decompose_hamiltonian_loss",
    "hamiltonian_observable",
    "solve_cqs",
    "HybridPipeline",
    "PipelineReport",
    "circuit_unitary",
    "decomposition_weight_profile",
    "heisenberg_observable",
    "truncate_by_locality",
    "truncate_by_weight",
    "QMatrixDiagnostics",
    "diagnose_q_matrix",
    "effective_rank",
    "generate_features_noisy",
    "ReuploadingClassifier",
    "GradientVarianceResult",
    "barren_plateau_sweep",
    "gradient_variance",
    "entangling_capability",
    "expressibility_kl",
    "haar_fidelity_pdf",
    "meyer_wallach_q",
    "QuantumKernelClassifier",
    "fidelity_kernel",
    "SpmdFitResult",
    "fit_logistic_spmd",
    "generate_features_spmd",
    "GreedySelectionResult",
    "greedy_forward_selection",
]
