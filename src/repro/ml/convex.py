"""l2-ball-constrained convex solvers (Theorem 4 setting).

Paper Sec. VI.B: to make the regression head robust to quantum estimation
noise, constrain ``||alpha||_2 <= 1`` and solve the resulting convex program
"with usual convex optimization solvers such as interior point methods".  We
implement accelerated projected gradient descent (FISTA-style), which for a
Euclidean-ball constraint is simpler than an interior-point method, has the
same global-optimality guarantee (the landscape is convex -- Table I's
selling point), and terminates deterministically.

Both the least-squares and the logistic objective are provided; both are
1-smooth after step-size normalisation, and convergence is monitored by the
projected-gradient norm.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ml.losses import bce_loss, rmse_loss, sigmoid

__all__ = ["project_l2_ball", "ConstrainedLeastSquares", "ConstrainedLogistic"]


def project_l2_ball(v: np.ndarray, radius: float = 1.0) -> np.ndarray:
    """Euclidean projection onto ``{x : ||x||_2 <= radius}``."""
    if radius <= 0:
        raise ValueError("radius must be positive")
    v = np.asarray(v, dtype=float)
    norm = np.linalg.norm(v)
    if norm <= radius:
        return v
    return v * (radius / norm)


@dataclass
class ConstrainedLeastSquares:
    """``min_alpha (1/d)||Y - Q alpha||_2^2  s.t. ||alpha||_2 <= radius``.

    Accelerated projected gradient with a Lipschitz step ``1/L``,
    ``L = 2 sigma_max(Q)^2 / d``.  Convex + compact feasible set => the
    returned alpha is a global minimiser up to ``tol``.
    """

    radius: float = 1.0
    max_iter: int = 2000
    tol: float = 1e-10
    coef_: np.ndarray | None = field(default=None, repr=False)
    n_iter_: int = 0

    def fit(self, q: np.ndarray, y: np.ndarray) -> ConstrainedLeastSquares:
        q = np.asarray(q, dtype=float)
        y = np.asarray(y, dtype=float)
        d, m = q.shape
        smax = np.linalg.norm(q, 2)
        step = d / (2.0 * smax**2) if smax > 0 else 1.0
        alpha = np.zeros(m)
        momentum = alpha.copy()
        t_prev = 1.0
        for _it in range(self.max_iter):
            grad = (2.0 / d) * (q.T @ (q @ momentum - y))
            new = project_l2_ball(momentum - step * grad, self.radius)
            t_next = 0.5 * (1.0 + np.sqrt(1.0 + 4.0 * t_prev**2))
            momentum = new + ((t_prev - 1.0) / t_next) * (new - alpha)
            shift = np.linalg.norm(new - alpha)
            alpha, t_prev = new, t_next
            if shift < self.tol * max(1.0, np.linalg.norm(alpha)):
                break
        self.coef_ = alpha
        self.n_iter_ = _it + 1
        return self

    def predict(self, q: np.ndarray) -> np.ndarray:
        if self.coef_ is None:
            raise RuntimeError("model is not fitted")
        return np.asarray(q, dtype=float) @ self.coef_

    def loss(self, q: np.ndarray, y: np.ndarray) -> float:
        return rmse_loss(np.asarray(y, dtype=float), self.predict(q))


@dataclass
class ConstrainedLogistic:
    """``min_alpha BCE(y, sigmoid(Q alpha))  s.t. ||alpha||_2 <= radius``.

    The logistic-regression extension of Theorem 4 (sigmoid is 1-Lipschitz,
    so the same ||Qhat - Q||_max bound controls the BCE loss difference).
    """

    radius: float = 1.0
    max_iter: int = 3000
    tol: float = 1e-10
    fit_intercept: bool = False
    coef_: np.ndarray | None = field(default=None, repr=False)
    intercept_: float = 0.0
    n_iter_: int = 0

    def fit(self, q: np.ndarray, y: np.ndarray) -> ConstrainedLogistic:
        q = np.asarray(q, dtype=float)
        y = np.asarray(y, dtype=float)
        design = np.hstack([q, np.ones((q.shape[0], 1))]) if self.fit_intercept else q
        d, m = design.shape
        # BCE Hessian <= (1/4d) Q^T Q => L = sigma_max^2 / (4 d).
        smax = np.linalg.norm(design, 2)
        step = 4.0 * d / (smax**2) if smax > 0 else 1.0
        alpha = np.zeros(m)
        momentum = alpha.copy()
        t_prev = 1.0
        for _it in range(self.max_iter):
            p = sigmoid(design @ momentum)
            grad = design.T @ (p - y) / d
            new = self._project(momentum - step * grad)
            t_next = 0.5 * (1.0 + np.sqrt(1.0 + 4.0 * t_prev**2))
            momentum = new + ((t_prev - 1.0) / t_next) * (new - alpha)
            shift = np.linalg.norm(new - alpha)
            alpha, t_prev = new, t_next
            if shift < self.tol * max(1.0, np.linalg.norm(alpha)):
                break
        if self.fit_intercept:
            self.coef_, self.intercept_ = alpha[:-1], float(alpha[-1])
        else:
            self.coef_, self.intercept_ = alpha, 0.0
        self.n_iter_ = _it + 1
        return self

    def _project(self, v: np.ndarray) -> np.ndarray:
        # The l2 constraint applies to the observable weights only; the
        # intercept (identity observable) is left free, mirroring how the
        # identity Pauli's expectation is exactly 1 and noise-free.
        if self.fit_intercept:
            head = project_l2_ball(v[:-1], self.radius)
            return np.concatenate([head, v[-1:]])
        return project_l2_ball(v, self.radius)

    def predict_proba(self, q: np.ndarray) -> np.ndarray:
        if self.coef_ is None:
            raise RuntimeError("model is not fitted")
        return sigmoid(np.asarray(q, dtype=float) @ self.coef_ + self.intercept_)

    def predict(self, q: np.ndarray) -> np.ndarray:
        return (self.predict_proba(q) >= 0.5).astype(int)

    def loss(self, q: np.ndarray, y: np.ndarray) -> float:
        return bce_loss(np.asarray(y, dtype=float), self.predict_proba(q))
