"""Executor-lifecycle behaviour shared by pipeline and model classes.

Every orchestrator that holds an ``executor`` field (``HybridPipeline``,
``PostVariationalRegressor``, ``PostVariationalClassifier``) needs the same
close()/context-manager plumbing -- and the same ownership rule, so it
lives here once.
"""

from __future__ import annotations

from repro.hpc.executor import ParallelExecutor

__all__ = ["ExecutorOwnerMixin"]


class ExecutorOwnerMixin:
    """close()/``with`` support for classes exposing an ``executor`` field.

    Ownership rule: a :class:`ParallelExecutor` facade is released on
    ``close()`` -- that is recoverable, the facade lazily rebuilds its pool
    if the object is used again.  A bare, caller-supplied
    :class:`~repro.hpc.runtime.ExecutionRuntime` is left untouched: its
    shutdown is permanent and it may be shared across consumers, so only
    its owner decides when it dies.
    """

    def close(self) -> None:
        """Release the persistent worker pool of an owned/facade executor."""
        executor = getattr(self, "executor", None)
        if isinstance(executor, ParallelExecutor):
            executor.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
