"""Codebase lint: repo invariants the generic linters cannot express.

Run as ``python -m repro.analysis.astlint src/`` (CI does) or through
``repro lint <paths>``.  Three invariants, each with a stable code:

* **RPA301 / RPA304 / RPA305 -- kernel hygiene.**  The hot kernels
  (:data:`KERNEL_BASENAMES`) are parameterized over an ``xp`` array
  namespace (:mod:`repro.xp`).  A function that accepts ``xp`` but never
  branches on it while calling NumPy contraction kernels directly has
  silently pinned the hot path to the host (RPA301); importing an
  accelerator library (torch/cupy) instead of going through ``repro.xp``
  breaks the lazy-detection contract (RPA304); and drawing global
  randomness (``np.random.*`` / the ``random`` module) inside a kernel
  breaks the seed contract that every stochastic estimator pins
  bit-for-bit in tests (RPA305).

* **RPA302 -- frozen-dataclass discipline.**  ``object.__setattr__`` is the
  one sanctioned escape hatch for frozen dataclasses and only inside
  ``__post_init__`` (field canonicalization at construction).  Anywhere
  else it mutates a value object other code assumes immutable (configs are
  hashed, cached, and shipped across process pools).

* **RPA303 -- typed public surface.**  Modules under :data:`TYPED_SCOPES`
  (``repro.api``, ``repro.analysis``, ``repro.xp``) ship a ``py.typed``
  marker, so their public functions must carry complete annotations --
  every parameter (``self``/``cls`` excepted) and the return type.

The checker is pure :mod:`ast` -- no imports of the linted code -- so it
runs on any tree.  Files that do not parse abort with a single error
diagnostic for that file; the other checks are skipped.
"""

from __future__ import annotations

import argparse
import ast
import sys
from collections.abc import Iterable, Iterator, Sequence
from pathlib import Path

from repro.analysis.diagnostics import Diagnostic, DiagnosticReport

__all__ = [
    "KERNEL_BASENAMES",
    "TYPED_SCOPES",
    "lint_source",
    "lint_paths",
    "iter_python_files",
    "main",
]

#: Hot-path kernel modules (matched by basename) held to the xp-routing,
#: no-direct-accelerator-import, no-global-randomness invariants.
KERNEL_BASENAMES = frozenset(
    {"statevector.py", "batched.py", "density.py", "compile.py", "gates.py"}
)

#: Path fragments marking the typed public surface (RPA303).  A file is in
#: scope when its POSIX path contains a fragment or ends with one.
TYPED_SCOPES = ("repro/api/", "repro/analysis/", "repro/xp.py")

#: Accelerator libraries that must only ever be imported inside repro.xp.
_ACCELERATOR_MODULES = frozenset({"torch", "cupy", "cupyx"})

#: NumPy contraction kernels whose direct use inside an ``xp``-parameterized
#: function (that never consults ``xp``) pins the hot path to the host.
_NP_HOT_CALLS = frozenset({"einsum", "tensordot", "matmul", "moveaxis"})

_FunctionNode = ast.FunctionDef | ast.AsyncFunctionDef


def _is_kernel_module(path: str) -> bool:
    return Path(path).name in KERNEL_BASENAMES


def _in_typed_scope(path: str) -> bool:
    posix = Path(path).as_posix()
    return any(fragment in posix for fragment in TYPED_SCOPES)


def _numpy_aliases(tree: ast.Module) -> set[str]:
    """Local names bound to the numpy module (``import numpy as np``)."""
    aliases: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                if item.name == "numpy":
                    aliases.add(item.asname or "numpy")
    return aliases


def _functions(tree: ast.Module) -> Iterator[_FunctionNode]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _all_args(node: _FunctionNode) -> list[ast.arg]:
    args = node.args
    every = list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
    if args.vararg is not None:
        every.append(args.vararg)
    if args.kwarg is not None:
        every.append(args.kwarg)
    return every


def _mentions_name(node: ast.AST, name: str) -> bool:
    return any(
        isinstance(sub, ast.Name) and sub.id == name for sub in ast.walk(node)
    )


def _check_kernel_hygiene(
    tree: ast.Module, path: str
) -> Iterator[Diagnostic]:
    """RPA301/RPA304/RPA305 over one kernel module's AST."""
    np_names = _numpy_aliases(tree)
    for node in ast.walk(tree):
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            roots = (
                [item.name.split(".")[0] for item in node.names]
                if isinstance(node, ast.Import)
                else [(node.module or "").split(".")[0]]
            )
            for root in roots:
                if root in _ACCELERATOR_MODULES:
                    yield Diagnostic(
                        "RPA304",
                        f"kernel module imports {root!r} directly; "
                        f"accelerator access must go through repro.xp "
                        f"(lazy detection, one namespace per process)",
                        fix_hint="take an xp: ArrayNamespace parameter and "
                        "use its ops",
                        location=f"{path}:{node.lineno}",
                    )
        if isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Attribute)
                and func.value.attr == "random"
                and isinstance(func.value.value, ast.Name)
                and func.value.value.id in np_names
            ):
                yield Diagnostic(
                    "RPA305",
                    f"kernel draws global randomness via "
                    f"np.random.{func.attr}(); stochastic estimators pin a "
                    f"bit-exact seed contract that global state breaks",
                    fix_hint="thread an explicit np.random.Generator from "
                    "the config seed",
                    location=f"{path}:{node.lineno}",
                )
    for func in _functions(tree):
        if not any(arg.arg == "xp" for arg in _all_args(func)):
            continue
        consults_xp = any(
            isinstance(sub, ast.If) and _mentions_name(sub.test, "xp")
            for sub in ast.walk(func)
        )
        if consults_xp:
            continue
        for sub in ast.walk(func):
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr in _NP_HOT_CALLS
                and isinstance(sub.func.value, ast.Name)
                and sub.func.value.id in np_names
            ):
                yield Diagnostic(
                    "RPA301",
                    f"{func.name}() takes an xp namespace but never "
                    f"branches on it and calls "
                    f"np.{sub.func.attr}() directly: the hot path is "
                    f"pinned to host NumPy regardless of the configured "
                    f"array backend",
                    fix_hint="guard the NumPy body with the native fast "
                    "path (if xp is None or xp.native) and route the "
                    "generic path through xp ops",
                    location=f"{path}:{sub.lineno}",
                )


def _check_frozen_mutation(tree: ast.Module, path: str) -> Iterator[Diagnostic]:
    """RPA302: object.__setattr__ outside __post_init__."""
    allowed: set[int] = set()
    for func in _functions(tree):
        if func.name == "__post_init__":
            for sub in ast.walk(func):
                allowed.add(id(sub))
    for node in ast.walk(tree):
        if id(node) in allowed or not isinstance(node, ast.Call):
            continue
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "__setattr__"
            and isinstance(func.value, ast.Name)
            and func.value.id == "object"
        ):
            yield Diagnostic(
                "RPA302",
                "object.__setattr__ outside __post_init__ mutates a frozen "
                "dataclass other code assumes immutable (configs are "
                "hashed, cached, and shipped across process pools)",
                fix_hint="build a new instance (dataclasses.replace) or "
                "confine canonicalization to __post_init__",
                location=f"{path}:{node.lineno}",
            )


def _public_functions(
    tree: ast.Module,
) -> Iterator[tuple[_FunctionNode, bool]]:
    """Yield (function, is_method) for the module's public surface.

    Public = top-level functions and methods of top-level public classes.
    Underscore-prefixed names are private -- except dunders, which *are*
    the public protocol surface.  Nested functions are implementation
    detail and skipped.
    """

    def is_public(name: str) -> bool:
        return not name.startswith("_") or (
            name.startswith("__") and name.endswith("__")
        )

    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and is_public(
            node.name
        ):
            yield node, False
        elif isinstance(node, ast.ClassDef) and not node.name.startswith("_"):
            for item in node.body:
                if isinstance(
                    item, (ast.FunctionDef, ast.AsyncFunctionDef)
                ) and is_public(item.name):
                    yield item, True


def _check_annotations(tree: ast.Module, path: str) -> Iterator[Diagnostic]:
    """RPA303: complete annotations on the typed public surface."""
    for func, is_method in _public_functions(tree):
        args = _all_args(func)
        if is_method and args and args[0].arg in ("self", "cls"):
            args = args[1:]
        missing = [arg.arg for arg in args if arg.annotation is None]
        if func.returns is None:
            missing.append("return")
        if missing:
            yield Diagnostic(
                "RPA303",
                f"public function {func.name}() is missing annotations for "
                f"{missing}; this module ships typed (py.typed)",
                fix_hint="annotate every parameter and the return type",
                location=f"{path}:{func.lineno}",
            )


def lint_source(source: str, path: str = "<string>") -> DiagnosticReport:
    """Lint one module's source text under the rules its path selects."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return DiagnosticReport.collect(
            [
                Diagnostic(
                    "RPA303",
                    f"file does not parse: {exc.msg}",
                    fix_hint="fix the syntax error; no other checks ran",
                    location=f"{path}:{exc.lineno or 0}",
                )
            ]
        )
    found: list[Diagnostic] = []
    if _is_kernel_module(path):
        found.extend(_check_kernel_hygiene(tree, path))
    found.extend(_check_frozen_mutation(tree, path))
    if _in_typed_scope(path):
        found.extend(_check_annotations(tree, path))
    return DiagnosticReport.collect(found)


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Expand files/directories into a sorted stream of ``.py`` files."""
    for entry in paths:
        root = Path(entry)
        if root.is_dir():
            yield from sorted(root.rglob("*.py"))
        else:
            yield root


def lint_paths(paths: Iterable[str | Path]) -> DiagnosticReport:
    """Lint every Python file under ``paths`` into one merged report."""
    found: list[Diagnostic] = []
    for file in iter_python_files(paths):
        found.extend(lint_source(file.read_text(), str(file)))
    return DiagnosticReport.collect(found)


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point (``python -m repro.analysis.astlint src/``)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.astlint",
        description="Repo-invariant AST lint (codes RPA301-RPA305).",
    )
    parser.add_argument("paths", nargs="+", help="files or directories to lint")
    parser.add_argument(
        "--json", action="store_true", help="emit diagnostics as a JSON array"
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit nonzero on any diagnostic, not just errors",
    )
    options = parser.parse_args(argv)
    report = lint_paths(options.paths)
    print(report.to_json(indent=2) if options.json else report.render())
    if options.strict:
        return 0 if report.clean else 1
    return 0 if report.ok else 1


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
