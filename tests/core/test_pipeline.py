"""End-to-end pipeline tests."""

import numpy as np
import pytest

from repro.core.pipeline import HybridPipeline
from repro.core.strategies import HybridStrategy, ObservableConstruction
from repro.hpc.cluster import ClusterModel, NodeSpec
from repro.hpc.executor import ParallelExecutor


@pytest.fixture(scope="module")
def small_task():
    rng = np.random.default_rng(0)
    angles = rng.uniform(0, 2 * np.pi, size=(40, 4, 4))
    y = (angles[:, 0, 0] + angles[:, 1, 1] > 2 * np.pi).astype(int)
    return angles, y


def test_fit_predict_roundtrip(small_task):
    angles, y = small_task
    pipe = HybridPipeline(strategy=ObservableConstruction(qubits=4, locality=1))
    pipe.fit(angles, y)
    preds = pipe.predict(angles)
    assert preds.shape == y.shape
    assert pipe.score(angles, y) > 0.5
    assert pipe.loss(angles, y) < 1.0


def test_report_contents(small_task):
    angles, y = small_task
    pipe = HybridPipeline(
        strategy=HybridStrategy(order=1, locality=1),
        cluster=ClusterModel(node=NodeSpec(), num_nodes=4),
    )
    pipe.fit(angles, y)
    report = pipe.report_
    assert report.num_features == 221
    assert report.num_ansatze == 17
    assert report.num_train == 40
    assert report.timer.total("generate_features") > 0
    assert report.projected_makespan is not None
    assert "ensemble" in report.summary()


def test_circuit_tasks_grid(small_task):
    angles, _ = small_task
    pipe = HybridPipeline(
        strategy=HybridStrategy(order=1, locality=1), chunk_size=16
    )
    tasks = pipe.circuit_tasks(angles.shape[0])
    # p Ansatz instances x ceil(40/16)=3 chunks.
    assert len(tasks) == 17 * 3
    assert sum(t.num_circuits for t in tasks) == 17 * 40


def test_executor_backend_equivalence(small_task):
    angles, y = small_task
    serial = HybridPipeline(strategy=ObservableConstruction(qubits=4, locality=1))
    serial.fit(angles, y)
    threaded = HybridPipeline(
        strategy=ObservableConstruction(qubits=4, locality=1),
        executor=ParallelExecutor("thread", 4),
        chunk_size=8,
    )
    threaded.fit(angles, y)
    assert np.allclose(serial.predict(angles), threaded.predict(angles))


def test_shots_pipeline(small_task):
    angles, y = small_task
    pipe = HybridPipeline(
        strategy=ObservableConstruction(qubits=4, locality=1),
        estimator="shots",
        shots=256,
    )
    pipe.fit(angles, y)
    assert pipe.report_.counter.get("shots_fired") > 0
    assert 0.0 <= pipe.score(angles, y) <= 1.0


def test_multiclass_pipeline():
    rng = np.random.default_rng(1)
    angles = rng.uniform(0, 2 * np.pi, size=(30, 4, 4))
    y = rng.integers(0, 3, 30)
    pipe = HybridPipeline(
        strategy=ObservableConstruction(qubits=4, locality=1), num_classes=3
    )
    pipe.fit(angles, y)
    assert set(np.unique(pipe.predict(angles))) <= {0, 1, 2}


def test_unfitted_errors(small_task):
    angles, y = small_task
    pipe = HybridPipeline(strategy=ObservableConstruction(qubits=4, locality=1))
    with pytest.raises(RuntimeError):
        pipe.predict(angles)
    with pytest.raises(ValueError):
        HybridPipeline(strategy=None)
