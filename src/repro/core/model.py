"""Post-variational quantum neural network models (paper Sec. V).

The model is a quantum feature map (the strategy's ensemble, Algorithm 1)
followed by a classical convex head:

* :class:`PostVariationalRegressor` -- linear regression head (closed-form
  ``alpha = Q^+ Y``, Eq. 29; optionally ridge or the l2-ball-constrained
  program of Theorem 4);
* :class:`PostVariationalClassifier` -- logistic head ("adding an extra
  sigmoid ... at the end of the output"), binary or softmax multiclass.

Execution is configured through the unified API: pass ``config=`` (an
:class:`~repro.api.config.ExecutionConfig`) or ``device=`` (a
:class:`~repro.api.device.QuantumDevice` session).  The loose execution
kwargs remain as deprecated shims -- and, unlike the historical models,
now *all* of them are honored: ``chunk_size``, ``compile`` and
``dispatch_policy`` previously existed only on :class:`HybridPipeline`
and were silently dropped here (the knob-drift bug the config object
fixes by construction).

Both models cache the generated feature matrix and expose it
(``q_train_``) so the error-propagation benches can perturb it in place.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Literal

import numpy as np

from repro.api.config import UNSET, ExecutionConfig, resolve_call
from repro.core.features import generate_features
from repro.core.lifecycle import ConfigMirrorMixin
from repro.core.strategies import Strategy
from repro.hpc.executor import ParallelExecutor
from repro.hpc.runtime import ExecutionRuntime
from repro.quantum.backends import QuantumBackend
from repro.ml.convex import ConstrainedLeastSquares, ConstrainedLogistic
from repro.ml.linear import LinearRegression, RidgeRegression
from repro.ml.logistic import LogisticRegression, SoftmaxRegression
from repro.ml.metrics import accuracy

__all__ = ["PostVariationalRegressor", "PostVariationalClassifier"]


class _ConfiguredModelMixin(ConfigMirrorMixin):
    """Shared config/device resolution for the two model dataclasses.

    ``_resolve_execution`` folds the deprecated loose kwargs into one
    validated :class:`ExecutionConfig` (or adopts the caller's
    ``config=``/``device=``), then mirrors the resolved values back onto
    the legacy attributes so existing introspection (``model.estimator``,
    ``model.shots``, ...) keeps working.  The mirrors stay *live* (see
    :class:`~repro.core.lifecycle.ConfigMirrorMixin`): post-construction
    mutation of a mirror or of ``model.config`` is honored on the next
    fit/predict, matching the historical read-at-sweep behaviour.
    """

    def _resolve_execution(self, owner: str) -> None:
        cfg, executor = resolve_call(
            self.config,
            self.device,
            self.executor,
            dict(
                estimator=self.estimator,
                shots=self.shots,
                snapshots=self.snapshots,
                chunk_size=self.chunk_size,
                seed=self.seed,
                compile=self.compile,
                dispatch_policy=self.dispatch_policy,
                backend=self.backend,
            ),
            owner=owner,
            # resolve_call -> _resolve_execution -> __post_init__ ->
            # dataclass __init__ -> external caller.
            stacklevel=4,
        )
        self.executor = executor
        self._apply_config(cfg)

    def _features(self, angles: np.ndarray) -> np.ndarray:
        # Sync first: a post-construction device swap rebinds self.executor,
        # so it must run before the executor= keyword is evaluated.
        cfg = self._current_config()
        return generate_features(
            self.strategy,
            angles,
            executor=self.executor,
            config=cfg,
        )


@dataclass
class PostVariationalRegressor(_ConfiguredModelMixin):
    """Quantum features + linear-regression head.

    ``head``: 'pinv' (paper closed form), 'ridge' (Tikhonov, Sec. VI.B) or
    'constrained' (l2-ball, Theorem 4).
    """

    # Field order: the historical positional signature (through ``backend``)
    # first, new unified-API fields appended -- positional callers keep
    # binding what they always bound.
    strategy: Strategy = None  # type: ignore[assignment]
    head: Literal["pinv", "ridge", "constrained"] = "pinv"
    ridge_lambda: float = 1e-3
    estimator: Any = UNSET
    shots: Any = UNSET
    snapshots: Any = UNSET
    executor: ParallelExecutor | ExecutionRuntime | None = None
    seed: Any = UNSET
    backend: QuantumBackend | None = UNSET
    chunk_size: Any = UNSET
    compile: Any = UNSET
    dispatch_policy: Any = UNSET
    config: ExecutionConfig | None = None
    device: Any = None
    q_train_: np.ndarray | None = field(default=None, repr=False)
    model_: object = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.strategy is None:
            raise ValueError("strategy is required")
        self._resolve_execution("PostVariationalRegressor")

    def _make_head(self):
        if self.head == "pinv":
            return LinearRegression()
        if self.head == "ridge":
            return RidgeRegression(lambda_=self.ridge_lambda)
        if self.head == "constrained":
            return ConstrainedLeastSquares()
        raise ValueError(f"unknown head {self.head!r}")

    def fit(self, angles: np.ndarray, y: np.ndarray) -> PostVariationalRegressor:
        self.q_train_ = self._features(angles)
        self.model_ = self._make_head().fit(self.q_train_, np.asarray(y, dtype=float))
        return self

    def predict(self, angles: np.ndarray) -> np.ndarray:
        if self.model_ is None:
            raise RuntimeError("model is not fitted")
        return self.model_.predict(self._features(angles))

    def loss(self, angles: np.ndarray, y: np.ndarray) -> float:
        """RMSE on fresh features for ``angles``."""
        if self.model_ is None:
            raise RuntimeError("model is not fitted")
        return self.model_.loss(self._features(angles), np.asarray(y, dtype=float))


@dataclass
class PostVariationalClassifier(_ConfiguredModelMixin):
    """Quantum features + logistic head (binary or softmax multiclass).

    ``l2`` is the logistic L2 penalty; ``head='constrained'`` switches the
    binary head to the l2-ball-constrained logistic program (Theorem 4's
    BCE extension).
    """

    # Historical positional signature first (through ``backend``), new
    # unified-API fields appended; see PostVariationalRegressor.
    strategy: Strategy = None  # type: ignore[assignment]
    num_classes: int = 2
    l2: float = 1.0
    head: Literal["logistic", "constrained"] = "logistic"
    estimator: Any = UNSET
    shots: Any = UNSET
    snapshots: Any = UNSET
    executor: ParallelExecutor | ExecutionRuntime | None = None
    seed: Any = UNSET
    backend: QuantumBackend | None = UNSET
    chunk_size: Any = UNSET
    compile: Any = UNSET
    dispatch_policy: Any = UNSET
    config: ExecutionConfig | None = None
    device: Any = None
    q_train_: np.ndarray | None = field(default=None, repr=False)
    model_: object = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.strategy is None:
            raise ValueError("strategy is required")
        if self.num_classes < 2:
            raise ValueError("num_classes must be >= 2")
        if self.head == "constrained" and self.num_classes != 2:
            raise ValueError("constrained head supports binary tasks only")
        self._resolve_execution("PostVariationalClassifier")

    def _make_head(self):
        if self.head == "constrained":
            return ConstrainedLogistic(fit_intercept=True)
        if self.num_classes == 2:
            # The identity observable already provides a bias column where
            # present; a free intercept is harmless and matches sklearn.
            return LogisticRegression(l2=self.l2)
        return SoftmaxRegression(num_classes=self.num_classes, l2=self.l2)

    def fit(self, angles: np.ndarray, y: np.ndarray) -> PostVariationalClassifier:
        self.q_train_ = self._features(angles)
        self.model_ = self._make_head().fit(self.q_train_, np.asarray(y))
        return self

    def features(self, angles: np.ndarray) -> np.ndarray:
        """Expose the quantum feature map (used by benches and examples)."""
        return self._features(angles)

    def predict(self, angles: np.ndarray) -> np.ndarray:
        if self.model_ is None:
            raise RuntimeError("model is not fitted")
        return self.model_.predict(self._features(angles))

    def predict_proba(self, angles: np.ndarray) -> np.ndarray:
        if self.model_ is None:
            raise RuntimeError("model is not fitted")
        return self.model_.predict_proba(self._features(angles))

    def loss(self, angles: np.ndarray, y: np.ndarray) -> float:
        """BCE / cross-entropy, the quantity in paper Tables III-IV."""
        if self.model_ is None:
            raise RuntimeError("model is not fitted")
        return self.model_.loss(self._features(angles), np.asarray(y))

    def score(self, angles: np.ndarray, y: np.ndarray) -> float:
        """Accuracy."""
        return accuracy(np.asarray(y), self.predict(angles))
