"""Deprecation-shim equivalence: legacy kwargs == config= bit-equal.

The acceptance pin for the unified API: every entry point fed loose legacy
kwargs must produce *bit-identical* results to the same call fed an
``ExecutionConfig`` -- across all three backend regimes and all three
executor pools -- and must emit a ``DeprecationWarning`` attributed to the
caller (this file), never to ``repro.*`` internals.
"""

import warnings

import numpy as np
import pytest

from repro.api import ExecutionConfig, QuantumDevice
from repro.core.features import evaluate_features, generate_features
from repro.core.model import PostVariationalClassifier
from repro.core.pipeline import HybridPipeline
from repro.core.strategies import ObservableConstruction
from repro.hpc.executor import ParallelExecutor
from repro.quantum.backends import (
    DensityMatrixBackend,
    MitigatedBackend,
    StatevectorBackend,
)
from repro.quantum.noise import NoiseModel

QUBITS = 2
BACKENDS = {
    "statevector": StatevectorBackend(),
    "density": DensityMatrixBackend(NoiseModel.depolarizing(0.02)),
    "mitigated": MitigatedBackend(
        DensityMatrixBackend(NoiseModel.depolarizing(0.02)), scales=(1, 3)
    ),
}
POOLS = ("serial", "thread", "process")


@pytest.fixture(scope="module")
def strategy():
    return ObservableConstruction(qubits=QUBITS, locality=1)


@pytest.fixture(scope="module")
def angles():
    rng = np.random.default_rng(42)
    return rng.uniform(0, 2 * np.pi, size=(5, 2, QUBITS))


@pytest.mark.parametrize("backend_name", sorted(BACKENDS))
@pytest.mark.parametrize("pool", POOLS)
def test_generate_features_legacy_equals_config(strategy, angles, backend_name, pool):
    backend = BACKENDS[backend_name]
    workers = 1 if pool == "serial" else 2
    with ParallelExecutor(pool, max_workers=workers) as executor:
        with pytest.warns(DeprecationWarning) as caught:
            legacy = generate_features(
                strategy,
                angles,
                estimator="shots",
                shots=16,
                seed=3,
                chunk_size=2,
                dispatch_policy="lpt",
                backend=backend,
                executor=executor,
            )
        # Attribution contract: the warning points at this test file, so the
        # CI filter (-W error::DeprecationWarning:repro) stays quiet here
        # but would fail a repro-internal caller.
        assert all(w.filename == __file__ for w in caught)
        via_config = generate_features(
            strategy,
            angles,
            executor=executor,
            config=ExecutionConfig(
                estimator="shots", shots=16, seed=3, chunk_size=2,
                dispatch_policy="lpt", backend=backend,
            ),
        )
    assert np.array_equal(legacy, via_config)


@pytest.mark.parametrize("backend_name", sorted(BACKENDS))
def test_device_run_matches_function_path(strategy, angles, backend_name):
    cfg = ExecutionConfig(
        estimator="shots", shots=16, seed=9, backend=BACKENDS[backend_name]
    )
    direct = generate_features(strategy, angles, config=cfg)
    with QuantumDevice(cfg, pool="thread", max_workers=2) as device:
        q, report = device.run(strategy, angles)
        assert report.num_tasks > 0
    assert np.array_equal(direct, q)


def test_evaluate_features_legacy_equals_config(strategy):
    rng = np.random.default_rng(1)
    raw = rng.normal(size=(6, 2**QUBITS)) + 1j * rng.normal(size=(6, 2**QUBITS))
    states = raw / np.linalg.norm(raw, axis=1, keepdims=True)
    with pytest.warns(DeprecationWarning):
        legacy = evaluate_features(strategy, states, estimator="exact", chunk_size=2)
    via_config = evaluate_features(
        strategy, states, config=ExecutionConfig(chunk_size=2)
    )
    assert np.array_equal(legacy, via_config)


def test_config_plus_legacy_kwargs_rejected(strategy, angles):
    with pytest.raises(TypeError, match="not both"):
        generate_features(
            strategy, angles, estimator="exact", config=ExecutionConfig()
        )


def test_device_plus_config_rejected(strategy, angles):
    with QuantumDevice() as device, pytest.raises(TypeError, match="not both"):
        generate_features(strategy, angles, config=ExecutionConfig(), device=device)


def test_device_plus_executor_rejected(strategy, angles):
    with (
        QuantumDevice() as device,
        ParallelExecutor() as executor,
        pytest.raises(TypeError, match="runtime"),
    ):
        generate_features(strategy, angles, device=device, executor=executor)


def test_non_device_passed_as_device_rejected(strategy, angles):
    # A ParallelExecutor also binds a pool and has .config/.runtime -- the
    # plausible mix-up must fail fast, not deep inside the sweep.
    with ParallelExecutor() as executor, pytest.raises(TypeError, match="QuantumDevice"):
        generate_features(strategy, angles, device=executor)
    # Config-bearing non-devices (a feature map) are equally rejected.
    from repro.api import QuantumFeatureMap

    fmap = QuantumFeatureMap(strategy, config=ExecutionConfig())
    with pytest.raises(TypeError, match="QuantumDevice"):
        generate_features(strategy, angles, device=fmap)


def test_pipeline_warning_names_callers_spelling(strategy):
    with pytest.warns(DeprecationWarning, match="scheduling_policy"):
        HybridPipeline(strategy=strategy, scheduling_policy="block").close()


def test_pipeline_legacy_equals_config(strategy, angles):
    y = np.array([0, 1, 0, 1, 0])
    with (
        pytest.warns(DeprecationWarning) as caught,
        HybridPipeline(
            strategy=strategy, estimator="exact", chunk_size=2,
            scheduling_policy="lpt", compile="auto",
        ) as legacy,
    ):
        legacy.fit(angles, y)
    assert all(w.filename == __file__ for w in caught)
    # Mirrors PIPELINE_DEFAULT_CONFIG (what the legacy kwargs fold into),
    # which since PR 5 also turns on batched execution.
    cfg = ExecutionConfig(
        chunk_size=2, dispatch_policy="lpt", compile="auto", vectorize="auto"
    )
    with HybridPipeline(strategy=strategy, config=cfg) as modern:
        modern.fit(angles, y)
    assert legacy.report_.counter.values == modern.report_.counter.values
    assert np.array_equal(legacy.head_.coef_, modern.head_.coef_)


def test_model_legacy_kwargs_warn_and_match(strategy, angles):
    y = np.array([0, 1, 0, 1, 0])
    with pytest.warns(DeprecationWarning) as caught:
        legacy = PostVariationalClassifier(
            strategy=strategy, estimator="shots", shots=16, seed=2
        ).fit(angles, y)
    assert all(w.filename == __file__ for w in caught)
    modern = PostVariationalClassifier(
        strategy=strategy,
        config=ExecutionConfig(estimator="shots", shots=16, seed=2),
    ).fit(angles, y)
    assert np.array_equal(legacy.q_train_, modern.q_train_)


def test_internal_deprecated_calls_become_errors(strategy, angles):
    """The CI filter contract, pinned locally.

    A caller whose module is ``repro.*`` exercising the deprecated kwarg
    surface must *raise* under ``error::DeprecationWarning:repro\\..*``
    (the filter installed by pytest.ini / CI), because the shims attribute
    their warning to the calling frame.
    """
    import sys
    import types

    mod = types.ModuleType("repro._fake_internal_caller")
    exec(
        "def violate(generate_features, strategy, angles):\n"
        "    generate_features(strategy, angles, estimator='exact')\n",
        mod.__dict__,
    )
    sys.modules["repro._fake_internal_caller"] = mod
    try:
        with warnings.catch_warnings():
            warnings.filterwarnings(
                "error", category=DeprecationWarning, module=r"repro\..*"
            )
            with pytest.raises(DeprecationWarning):
                mod.violate(generate_features, strategy, angles)
    finally:
        del sys.modules["repro._fake_internal_caller"]


def test_model_positional_signature_preserved(strategy, angles):
    """The historical positional prefix (through ``backend``) still binds
    the same parameters: new unified-API fields are appended after it."""
    y = np.array([0, 1, 0, 1, 0])
    with pytest.warns(DeprecationWarning):
        positional = PostVariationalClassifier(
            strategy, 2, 1.0, "logistic", "shots", 16, 512, None, 7
        )
    assert positional.seed == 7  # the 9th positional was always seed
    assert positional.config.chunk_size is None
    modern = PostVariationalClassifier(
        strategy=strategy,
        config=ExecutionConfig(estimator="shots", shots=16, seed=7),
    )
    assert np.array_equal(
        positional.fit(angles, y).q_train_, modern.fit(angles, y).q_train_
    )


def test_legacy_attribute_mirrors_preserved(strategy):
    """Resolved knobs stay readable on the dataclasses (back-compat)."""
    pipe = HybridPipeline(strategy=strategy, config=ExecutionConfig(compile="auto"))
    assert pipe.compile == "auto"
    assert pipe.estimator == "exact"
    assert pipe.scheduling_policy == "work_stealing"
    pipe.close()
    model = PostVariationalClassifier(
        strategy=strategy, config=ExecutionConfig(chunk_size=4, dispatch_policy="lpt")
    )
    assert model.chunk_size == 4
    assert model.dispatch_policy == "lpt"
