"""Deterministic simulated-cluster timing model.

Real strong/weak-scaling numbers on a laptop are hostage to core count and
load; the SC-style evaluation therefore uses an explicit analytic model of a
hybrid HPC-QC cluster, the standard methodology for scheduling studies.  A
:class:`ClusterModel` is a set of :class:`NodeSpec` (QPU sampling rate,
per-circuit setup latency) plus an interconnect (latency/bandwidth); given a
list of :class:`CircuitTask` it produces per-node busy times, communication
time and the end-to-end makespan for any scheduling policy.

The model captures the three regimes the paper's workflow exposes:
* QPU-bound: many shots per circuit -- near-linear scaling;
* latency-bound: many tiny circuits -- setup overhead dominates;
* comm-bound: results (Q-matrix blocks) large relative to link bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence

import numpy as np

from repro.hpc.scheduler import Assignment, schedule

__all__ = [
    "NodeSpec",
    "CircuitTask",
    "ClusterModel",
    "ScalingPoint",
    "strong_scaling",
    "weak_scaling",
    "task_costs",
    "simulation_dim",
    "stacked_pass_flops",
]

_REPRESENTATIONS = ("statevector", "density")


def simulation_dim(num_qubits: int, representation: str = "statevector") -> int:
    """Classical state size driving per-task simulation cost.

    ``2**n`` amplitudes for a statevector, ``4**n`` entries for a density
    matrix -- the factor by which the scheduler prices noisy (Kraus)
    evolution above ideal evolution for the same circuit.
    """
    if num_qubits < 1:
        raise ValueError(f"num_qubits={num_qubits} must be >= 1")
    if representation not in _REPRESENTATIONS:
        raise ValueError(
            f"representation must be one of {_REPRESENTATIONS}, got {representation!r}"
        )
    dim = 2**num_qubits
    return dim * dim if representation == "density" else dim


def stacked_pass_flops(
    num_circuits: int,
    num_qubits: int,
    kernel_passes: int,
    num_observables: int,
    representation: str = "density",
) -> float:
    """Classical flops of a vectorized stacked-pass evolution task.

    Batched density programs report their total kernel-pass count
    (gates + noise channels, folded ZNE copies included), each pass
    touching the full ``4**n`` stacked state once -- so the cost is priced
    directly at ``simulation_dim`` per pass rather than through a backend
    fold-weight multiplier, which would double-count the folded copies.
    The ``4 * passes + q`` shape mirrors the per-sample task formula, so
    vectorized and per-sample tasks stay comparable for the scheduler.
    """
    dim = simulation_dim(num_qubits, representation)
    return float(num_circuits * dim * (4 * kernel_passes + num_observables))


@dataclass(frozen=True)
class NodeSpec:
    """One hybrid node: a QPU (or QPU partition) plus classical cores.

    ``shot_rate``        -- measurement shots per second.
    ``circuit_overhead`` -- seconds of setup (compile/load/arm) per circuit.
    ``flops``            -- classical flops for local post-processing.
    """

    shot_rate: float = 1e4
    circuit_overhead: float = 1e-3
    flops: float = 1e10

    def __post_init__(self) -> None:
        if self.shot_rate <= 0 or self.circuit_overhead < 0 or self.flops <= 0:
            raise ValueError("invalid NodeSpec parameters")


@dataclass(frozen=True)
class CircuitTask:
    """One unit of dispatch: a fixed circuit evaluated on a data chunk.

    ``num_circuits``  -- distinct circuit executions in the task (e.g. one per
                         data point in the chunk).
    ``shots``         -- shots per circuit execution (0 = analytic/simulated).
    ``result_bytes``  -- bytes shipped back to the host (Q-matrix block).
    ``classical_flops`` -- local post-processing work.
    ``num_shards``    -- statevector slabs the simulation is split across
                         (1 = single-process).  Sharding divides the
                         classical simulation work but adds per-circuit
                         synchronisation rounds (see
                         :meth:`ClusterModel.task_compute_time`).
    """

    num_circuits: int
    shots: int = 0
    result_bytes: int = 0
    classical_flops: float = 0.0
    num_shards: int = 1

    def __post_init__(self) -> None:
        if self.num_circuits < 0 or self.shots < 0 or self.result_bytes < 0:
            raise ValueError("invalid CircuitTask parameters")
        if self.num_shards < 1 or self.num_shards & (self.num_shards - 1):
            raise ValueError(
                f"num_shards={self.num_shards} must be a power of two >= 1"
            )


@dataclass
class ClusterModel:
    """Homogeneous-node cluster with a star interconnect to the host."""

    node: NodeSpec = field(default_factory=NodeSpec)
    num_nodes: int = 1
    link_latency: float = 1e-4  # seconds per message
    link_bandwidth: float = 1e9  # bytes per second

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        if self.link_latency < 0 or self.link_bandwidth <= 0:
            raise ValueError("invalid interconnect parameters")

    # ------------------------------------------------------------ cost model
    def task_compute_time(self, task: CircuitTask) -> float:
        """Node-local execution time for one task.

        Sharded tasks (``num_shards > 1``) divide the classical simulation
        flops across slabs but pay ``log2(num_shards)`` pairwise-exchange
        rounds of link latency per circuit -- the remap cost of the gate-group
        engine, priced so dispatch sees both the speedup and its overhead.
        """
        shots = max(task.shots, 1)  # analytic evaluation still occupies the QPU/simulator once
        quantum = task.num_circuits * (self.node.circuit_overhead + shots / self.node.shot_rate)
        classical = task.classical_flops / (self.node.flops * task.num_shards)
        if task.num_shards > 1:
            sync_rounds = task.num_shards.bit_length() - 1
            classical += task.num_circuits * sync_rounds * self.link_latency
        return quantum + classical

    def task_comm_time(self, task: CircuitTask) -> float:
        """Host link time to return one task's results."""
        return self.link_latency + task.result_bytes / self.link_bandwidth

    # ------------------------------------------------------------ simulation
    def makespan(
        self, tasks: Sequence[CircuitTask], policy: str = "lpt"
    ) -> tuple[float, Assignment]:
        """End-to-end time: max over nodes of (compute + serialised comm).

        Communication to the host is serialised per node (one NIC) and
        overlapped across nodes; the host gather adds one final latency.
        """
        compute = np.array([self.task_compute_time(t) for t in tasks])
        assignment = schedule(compute, self.num_nodes, policy)
        node_times = []
        for node_tasks in assignment.tasks_per_node:
            comp = float(sum(compute[list(node_tasks)])) if node_tasks else 0.0
            comm = float(sum(self.task_comm_time(tasks[i]) for i in node_tasks))
            node_times.append(comp + comm)
        total = max(node_times, default=0.0) + self.link_latency
        return total, assignment


def task_costs(tasks: Sequence[CircuitTask], node: NodeSpec | None = None) -> np.ndarray:
    """Per-task cost vector for *live* dispatch ordering.

    The same cost model that drives the analytic makespan projection
    (:meth:`ClusterModel.task_compute_time`) feeds the runtime's scheduling
    policies, so the projected schedule and the real submission order agree
    by construction.  Only cost *ratios* matter for ordering; the default
    :class:`NodeSpec` gives a sensible relative weighting of shots vs
    per-circuit overhead vs classical post-processing.
    """
    model = ClusterModel(node=node or NodeSpec())
    return np.array([model.task_compute_time(t) for t in tasks], dtype=float)


@dataclass(frozen=True)
class ScalingPoint:
    """One point on a scaling curve."""

    num_nodes: int
    time: float
    speedup: float
    efficiency: float


def strong_scaling(
    tasks: Sequence[CircuitTask],
    node: NodeSpec,
    node_counts: Sequence[int],
    policy: str = "lpt",
    link_latency: float = 1e-4,
    link_bandwidth: float = 1e9,
) -> list[ScalingPoint]:
    """Fixed total problem, growing cluster (classic strong scaling)."""
    baseline = None
    out: list[ScalingPoint] = []
    for n in node_counts:
        model = ClusterModel(
            node=node, num_nodes=n, link_latency=link_latency, link_bandwidth=link_bandwidth
        )
        t, _ = model.makespan(tasks, policy)
        if baseline is None:
            base_model = ClusterModel(
                node=node, num_nodes=1, link_latency=link_latency, link_bandwidth=link_bandwidth
            )
            baseline, _ = base_model.makespan(tasks, policy)
        sp = baseline / t if t > 0 else float("inf")
        out.append(ScalingPoint(num_nodes=n, time=t, speedup=sp, efficiency=sp / n))
    return out


def weak_scaling(
    tasks_per_node: Sequence[CircuitTask],
    node: NodeSpec,
    node_counts: Sequence[int],
    policy: str = "lpt",
    link_latency: float = 1e-4,
    link_bandwidth: float = 1e9,
) -> list[ScalingPoint]:
    """Problem grows with the cluster: each node receives a copy of
    ``tasks_per_node``; ideal efficiency stays at 1."""
    base_model = ClusterModel(
        node=node, num_nodes=1, link_latency=link_latency, link_bandwidth=link_bandwidth
    )
    baseline, _ = base_model.makespan(list(tasks_per_node), policy)
    out: list[ScalingPoint] = []
    for n in node_counts:
        model = ClusterModel(
            node=node, num_nodes=n, link_latency=link_latency, link_bandwidth=link_bandwidth
        )
        t, _ = model.makespan(list(tasks_per_node) * n, policy)
        eff = baseline / t if t > 0 else 1.0
        out.append(ScalingPoint(num_nodes=n, time=t, speedup=eff * n, efficiency=eff))
    return out
