"""Quickstart: train a post-variational quantum classifier in ~20 lines.

Builds the paper's Table III setup at reduced size: synthetic coat-vs-shirt
images, max-pooled to 4x4 and angle-encoded (Fig. 7), a 2-local
observable-construction ensemble (Sec. IV.B), and a logistic head.

Run:  python examples/quickstart.py
"""

from repro.api import ExecutionConfig, QuantumFeatureMap
from repro.core import ObservableConstruction, PostVariationalClassifier, VariationalClassifier
from repro.data import binary_coat_vs_shirt
from repro.ml import LogisticRegression, accuracy


def main() -> None:
    # 1. Data: 28x28 synthetic garment images -> pooled 4x4 angle grids.
    split = binary_coat_vs_shirt(train_per_class=100, test_per_class=25)
    print(f"train {split.num_train}, test {split.num_test}, classes {split.class_names}")

    # 2. Strategy: measure every Pauli of locality <= 2 on the encoded state.
    strategy = ObservableConstruction(qubits=4, locality=2)
    print(f"ensemble: {strategy.describe()}")

    # 3. Model: quantum feature map + classical convex head; one fit call.
    #    Execution knobs travel as one ExecutionConfig (repro.api).
    model = PostVariationalClassifier(
        strategy=strategy, config=ExecutionConfig(compile="auto")
    )
    model.fit(split.x_train, split.y_train)
    print(f"post-variational train acc: {model.score(split.x_train, split.y_train):.3f}")
    print(f"post-variational test  acc: {model.score(split.x_test, split.y_test):.3f}")
    print(f"train BCE loss: {model.loss(split.x_train, split.y_train):.4f}")

    # 4. The same split, sklearn-style: QuantumFeatureMap is a fit/transform
    #    transformer, so the quantum features compose with any classical head.
    with QuantumFeatureMap(strategy, config=ExecutionConfig(compile="auto")) as fmap:
        q_train = fmap.fit_transform(split.x_train)
        q_test = fmap.transform(split.x_test)
    head = LogisticRegression().fit(q_train, split.y_train)
    print(f"feature-map + logistic test acc: "
          f"{accuracy(split.y_test, head.predict(q_test)):.3f}")

    # 5. Compare to the variational baseline (parameter-shift training).
    baseline = VariationalClassifier(epochs=15)
    baseline.fit(split.x_train, split.y_train)
    print(f"variational baseline train acc: {baseline.score(split.x_train, split.y_train):.3f}")


if __name__ == "__main__":
    main()
