"""AST codebase lint: every RPA3xx code pinned on source snippets, plus the
CLI surface and the repo-is-clean gate CI relies on."""

import json
import subprocess
import sys
from pathlib import Path

from repro.analysis.astlint import (
    KERNEL_BASENAMES,
    TYPED_SCOPES,
    iter_python_files,
    lint_paths,
    lint_source,
    main,
)

KERNEL_PATH = "src/repro/quantum/statevector.py"  # any KERNEL_BASENAMES name
PLAIN_PATH = "src/repro/core/helper.py"  # neither kernel nor typed scope
TYPED_PATH = "src/repro/api/surface.py"  # inside a TYPED_SCOPES fragment


# ------------------------------------------- RPA301 (xp-hardwired NumPy)
RPA301_TRIGGER = """
import numpy as np

def evolve(states, xp):
    return np.einsum("ij,bj->bi", states, states)
"""

RPA301_PASS = """
import numpy as np

def evolve(states, xp):
    if xp is None or xp.native:
        return np.einsum("ij,bj->bi", states, states)
    return xp.einsum("ij,bj->bi", states, states)
"""


def test_rpa301_trigger_and_pass():
    assert "RPA301" in lint_source(RPA301_TRIGGER, KERNEL_PATH).codes()
    assert "RPA301" not in lint_source(RPA301_PASS, KERNEL_PATH).codes()
    # Only kernel modules are held to the xp-routing invariant.
    assert "RPA301" not in lint_source(RPA301_TRIGGER, PLAIN_PATH).codes()


# ------------------------------------- RPA302 (frozen mutation escape hatch)
RPA302_TRIGGER = """
def retune(config, shards):
    object.__setattr__(config, "shards", shards)
"""

RPA302_PASS = """
class Config:
    def __post_init__(self):
        object.__setattr__(self, "shards", int(self.shards))
"""


def test_rpa302_trigger_and_pass():
    # Applies to every module, not just kernels or typed scopes.
    assert "RPA302" in lint_source(RPA302_TRIGGER, PLAIN_PATH).codes()
    assert "RPA302" not in lint_source(RPA302_PASS, PLAIN_PATH).codes()


# --------------------------------------- RPA303 (typed public surface)
RPA303_TRIGGER = """
def run(circuit, shots):
    return None
"""

RPA303_PASS = """
def run(circuit: object, shots: int) -> None:
    return None

def _private(untyped):
    return untyped

class Public:
    def method(self, x: int) -> int:
        return x

class _Private:
    def method(self, x):
        return x
"""


def test_rpa303_trigger_and_pass():
    report = lint_source(RPA303_TRIGGER, TYPED_PATH)
    assert "RPA303" in report.codes()
    (finding,) = report
    assert "circuit" in finding.message and "return" in finding.message
    assert "RPA303" not in lint_source(RPA303_PASS, TYPED_PATH).codes()
    # Out-of-scope modules may stay untyped.
    assert "RPA303" not in lint_source(RPA303_TRIGGER, PLAIN_PATH).codes()


def test_rpa303_syntax_error_aborts_file():
    report = lint_source("def broken(:\n", TYPED_PATH)
    assert not report.ok
    assert "does not parse" in report.diagnostics[0].message


# ------------------------------------ RPA304 (direct accelerator import)
def test_rpa304_trigger_and_pass():
    assert "RPA304" in lint_source("import torch\n", KERNEL_PATH).codes()
    assert "RPA304" in lint_source("from cupy import asarray\n", KERNEL_PATH).codes()
    assert "RPA304" not in lint_source("from repro import xp\n", KERNEL_PATH).codes()
    assert "RPA304" not in lint_source("import torch\n", "src/repro/xp.py").codes()


# -------------------------------------- RPA305 (global randomness in kernel)
def test_rpa305_trigger_and_pass():
    trigger = "import numpy as np\n\ndef f():\n    return np.random.normal()\n"
    clean = "import numpy as np\n\ndef f(rng):\n    return rng.normal()\n"
    assert "RPA305" in lint_source(trigger, KERNEL_PATH).codes()
    assert "RPA305" not in lint_source(clean, KERNEL_PATH).codes()
    assert "RPA305" not in lint_source(trigger, PLAIN_PATH).codes()


# ------------------------------------------------------- file plumbing
def test_iter_python_files_and_lint_paths(tmp_path):
    tree = tmp_path / "repro" / "api"
    tree.mkdir(parents=True)
    (tree / "good.py").write_text("def f(x: int) -> int:\n    return x\n")
    (tree / "bad.py").write_text("def f(x):\n    return x\n")
    (tmp_path / "notes.txt").write_text("not python")

    files = list(iter_python_files([tmp_path]))
    assert [f.name for f in files] == ["bad.py", "good.py"]

    report = lint_paths([tmp_path])
    assert report.codes() == ("RPA303",)
    assert "bad.py" in report.diagnostics[0].location


def test_main_exit_codes_and_json(tmp_path, capsys):
    clean = tmp_path / "repro" / "analysis"
    clean.mkdir(parents=True)
    (clean / "mod.py").write_text("def f(x: int) -> int:\n    return x\n")
    assert main([str(tmp_path)]) == 0
    assert main([str(tmp_path), "--strict"]) == 0
    capsys.readouterr()

    (clean / "untyped.py").write_text("def f(x):\n    return x\n")
    assert main([str(tmp_path), "--json"]) == 1  # RPA303 is error severity
    payload = json.loads(capsys.readouterr().out)
    assert payload[0]["code"] == "RPA303"


def test_repo_source_tree_is_clean():
    """The CI gate: the shipped src/ tree passes its own AST lint."""
    root = Path(__file__).resolve().parents[2]
    report = lint_paths([root / "src"])
    assert report.clean, report.render()


def test_astlint_runs_as_module():
    root = Path(__file__).resolve().parents[2]
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis.astlint", "src/"],
        cwd=root,
        capture_output=True,
        text=True,
        env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_scope_tables_are_sane():
    assert "statevector.py" in KERNEL_BASENAMES
    assert any("repro/api/" in fragment for fragment in TYPED_SCOPES)
