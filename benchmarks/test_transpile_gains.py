"""E11 -- Sec. VIII transpilation claim: fixed post-variational circuits
shrink under optimisation.

"Often our initial circuit has the parameters set to zero, and we can
remove gates that evaluate to identity ... leading to fewer gates per
circuit, and potentially lower circuit depth."  Measured here across the
whole Ansatz-expansion ensemble (R = 1): per-shift-configuration gate and
depth reduction of the bound Fig. 8 circuits, compared against a
randomly-initialised variational circuit (which barely compresses).
"""

from __future__ import annotations

import numpy as np

from repro.core.ansatz import fig8_ansatz
from repro.core.shifts import enumerate_shift_configurations
from repro.quantum.transpile import optimize


def run_transpile():
    circuit = fig8_ansatz()
    configs = enumerate_shift_configurations(8, 1)
    rows = []
    for config in configs:
        bound = circuit.bind(config.vector())
        _, report = optimize(bound)
        rows.append((config.label, report))

    rng = np.random.default_rng(0)
    random_bound = circuit.bind(rng.uniform(0.1, np.pi - 0.1, 8))
    _, random_report = optimize(random_bound)
    return rows, random_report


def test_transpile_gains(benchmark):
    rows, random_report = benchmark.pedantic(run_transpile, rounds=1, iterations=1)

    print("\n=== E11: transpilation of the Ansatz-expansion ensemble (R=1) ===")
    print(f"{'config':>10} {'gates':>12} {'depth':>12} {'reduction':>10}")
    for label, report in rows[:6]:
        print(
            f"{label:>10} {report.gates_before:>5} -> {report.gates_after:<4} "
            f"{report.depth_before:>5} -> {report.depth_after:<4} "
            f"{report.gate_reduction:>9.0%}"
        )
    mean_reduction = float(np.mean([r.gate_reduction for _, r in rows]))
    print(f"mean gate reduction over {len(rows)} ensemble circuits: {mean_reduction:.0%}")
    print(
        f"random-parameter variational circuit: {random_report.gates_before} -> "
        f"{random_report.gates_after} ({random_report.gate_reduction:.0%})"
    )

    # The zero-shift (base) circuit collapses entirely: identity.
    base = rows[0][1]
    assert base.gates_after == 0
    # Every single-shift circuit loses at least the 7 zero rotations and
    # the mirrored CNOT rings that the surviving rotation does not block.
    for label, report in rows[1:]:
        assert report.gates_after <= 9, label
        assert report.depth_after <= report.depth_before
    # Ensemble-wide: most of the gate volume vanishes.
    assert mean_reduction > 0.5
    # The randomly-initialised variational circuit compresses far less.
    assert random_report.gate_reduction < 0.2
