"""CLI surface: ``repro serve`` load test and ``repro lint --serve``."""

from __future__ import annotations

import json

import pytest

from repro.cli import main


def test_serve_command_emits_load_and_metrics(capsys):
    code = main([
        "serve",
        "--requests", "16",
        "--concurrency", "8",
        "--samples", "1",
        "--templates", "2",
        "--tenants", "2",
        "--qubits", "2",
        "--window-ms", "10",
        "--pool", "serial",
    ])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["load"]["completed"] == 16
    assert payload["load"]["rejected"] == 0
    assert payload["metrics"]["coalesce_ratio"] >= 1.0
    assert set(payload["metrics"]["tenants"]) == {"tenant-0", "tenant-1"}


def test_lint_serve_flags_finds_rpa11x(capsys):
    code = main([
        "lint", "--serve", "--json", "--window-ms", "0",
        "--tenant-weight", "free=0",
    ])
    out = capsys.readouterr().out
    assert code == 1  # RPA112 is an error
    codes = {d["code"] for d in json.loads(out)}
    assert {"RPA110", "RPA112"} <= codes


def test_lint_without_serve_ignores_serve_flags(capsys):
    code = main(["lint", "--window-ms", "0"])
    assert code == 0
    assert "RPA110" not in capsys.readouterr().out


def test_serve_rejects_bad_tenant_weight():
    with pytest.raises(SystemExit):
        main(["serve", "--tenant-weight", "nonsense"])
