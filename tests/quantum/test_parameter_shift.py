"""Parameter-shift rule tests against finite differences (property-based)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ansatz import fig8_ansatz
from repro.quantum.circuit import Circuit
from repro.quantum.observables import PauliString
from repro.quantum.parameter_shift import (
    expectation_function,
    gradient,
    hessian,
    shift_rule_terms,
)


def two_param_circuit() -> Circuit:
    c = Circuit(2)
    c.append("ry", 0, "a").append("rx", 1, "b").append("cnot", (0, 1))
    return c


@given(
    a=st.floats(-np.pi, np.pi),
    b=st.floats(-np.pi, np.pi),
)
@settings(max_examples=25, deadline=None)
def test_gradient_matches_finite_difference(a, b):
    f = expectation_function(two_param_circuit(), PauliString("ZZ"))
    theta = np.array([a, b])
    g = gradient(f, theta)
    eps = 1e-6
    for u in range(2):
        e = np.zeros(2)
        e[u] = eps
        fd = (f(theta + e) - f(theta - e)) / (2 * eps)
        assert g[u] == pytest.approx(fd, abs=1e-5)


@given(a=st.floats(-2.0, 2.0), b=st.floats(-2.0, 2.0))
@settings(max_examples=10, deadline=None)
def test_hessian_matches_finite_difference(a, b):
    f = expectation_function(two_param_circuit(), PauliString("XZ"))
    theta = np.array([a, b])
    h = hessian(f, theta)
    assert np.allclose(h, h.T)
    eps = 1e-4
    for u in range(2):
        for v in range(2):
            eu, ev = np.zeros(2), np.zeros(2)
            eu[u], ev[v] = eps, eps
            fd = (
                f(theta + eu + ev) - f(theta + eu - ev) - f(theta - eu + ev) + f(theta - eu - ev)
            ) / (4 * eps * eps)
            assert h[u, v] == pytest.approx(fd, abs=1e-3)


def test_gradient_of_fig8_ansatz_at_zero():
    """Gradient at the identity initialisation is finite and mostly nonzero
    for a 1-local readout (this Ansatz + init avoids barren plateaus)."""
    circuit = fig8_ansatz()
    from repro.data.encoding import encode_batch

    rng = np.random.default_rng(0)
    state = encode_batch(rng.uniform(0, 2 * np.pi, (1, 4, 4)))[0]
    f = expectation_function(circuit, PauliString("ZIII"), state=state)
    g = gradient(f, np.zeros(8))
    assert g.shape == (8,)
    assert np.any(np.abs(g) > 1e-3)


def test_gradient_stationary_point():
    """<Z> after ry(theta) is cos(theta): gradient at theta=0 is 0, at
    theta=pi/2 it is -1."""
    c = Circuit(1)
    c.append("ry", 0, "t")
    f = expectation_function(c, PauliString("Z"))
    assert gradient(f, [0.0])[0] == pytest.approx(0.0, abs=1e-12)
    assert gradient(f, [np.pi / 2])[0] == pytest.approx(-1.0)


def test_hessian_diagonal_identity():
    """For f = cos(theta), f'' = -cos(theta)."""
    c = Circuit(1)
    c.append("ry", 0, "t")
    f = expectation_function(c, PauliString("Z"))
    for theta in (0.0, 0.4, 1.3):
        assert hessian(f, [theta])[0, 0] == pytest.approx(-np.cos(theta), abs=1e-10)


def test_shift_rule_terms_structure():
    terms = shift_rule_terms(3, 1)
    assert len(terms) == 2
    (c1, v1), (c2, v2) = terms
    assert c1 == 0.5 and c2 == -0.5
    assert v1[1] == pytest.approx(np.pi / 2)
    assert np.all(v1 == -v2)


def test_expectation_function_with_input_state():
    psi = np.array([0, 1], dtype=complex)  # |1>
    c = Circuit(1)
    c.append("rx", 0, "t")
    f = expectation_function(c, PauliString("Z"), state=psi)
    assert f(np.zeros(1)) == pytest.approx(-1.0)
