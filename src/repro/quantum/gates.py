"""Quantum gate matrices and metadata.

All gates are dense complex128 NumPy matrices in the computational basis.
Qubit 0 is the *most significant* bit of a basis index (big-endian), matching
the string convention of :mod:`repro.quantum.observables` where ``"XZ"`` means
X on qubit 0 and Z on qubit 1.

Two registries are exposed:

* :data:`FIXED_GATES` -- parameter-free gates, name -> matrix.
* :data:`PARAMETRIC_GATES` -- name -> callable(theta) returning the matrix.

Rotation gates follow the physics convention ``R_P(theta) = exp(-i theta P/2)``
so that the parameter-shift rule of Mitarai et al. (shift +-pi/2) applies
exactly (paper Sec. IV.A).
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

__all__ = [
    "I2",
    "X",
    "Y",
    "Z",
    "H",
    "S",
    "SDG",
    "T",
    "TDG",
    "CNOT",
    "CZ",
    "SWAP",
    "rx",
    "ry",
    "rz",
    "crx",
    "cry",
    "crz",
    "phase",
    "rx_batch",
    "ry_batch",
    "rz_batch",
    "phase_batch",
    "rotation_batch_xp",
    "FIXED_GATES",
    "PARAMETRIC_GATES",
    "GATE_NUM_QUBITS",
    "gate_matrix",
    "is_parametric",
    "PAULI_MATRICES",
]

I2 = np.eye(2, dtype=np.complex128)
X = np.array([[0, 1], [1, 0]], dtype=np.complex128)
Y = np.array([[0, -1j], [1j, 0]], dtype=np.complex128)
Z = np.array([[1, 0], [0, -1]], dtype=np.complex128)
H = np.array([[1, 1], [1, -1]], dtype=np.complex128) / np.sqrt(2)
S = np.array([[1, 0], [0, 1j]], dtype=np.complex128)
SDG = S.conj().T
T = np.array([[1, 0], [0, np.exp(1j * np.pi / 4)]], dtype=np.complex128)
TDG = T.conj().T

CNOT = np.array(
    [[1, 0, 0, 0], [0, 1, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0]], dtype=np.complex128
)
CZ = np.diag([1, 1, 1, -1]).astype(np.complex128)
SWAP = np.array(
    [[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]], dtype=np.complex128
)

#: Pauli letter -> matrix, used throughout the observable machinery.
PAULI_MATRICES: dict[str, np.ndarray] = {"I": I2, "X": X, "Y": Y, "Z": Z}


def rx(theta: float) -> np.ndarray:
    """Rotation about X: ``exp(-i theta X / 2)``."""
    c, s = np.cos(theta / 2), np.sin(theta / 2)
    return np.array([[c, -1j * s], [-1j * s, c]], dtype=np.complex128)


def rx_batch(angles: np.ndarray) -> np.ndarray:
    """``(batch, 2, 2)`` stack of RX matrices, one per angle.

    The vectorised builders are the single source of the per-sample
    rotation math shared by the Fig. 7 encoder kernel
    (:func:`repro.data.encoding.encode_batch`) and the batched engine's
    angle slots (:data:`repro.quantum.batched.BATCHED_ROTATIONS`).
    """
    c, s = np.cos(angles / 2), np.sin(angles / 2)
    out = np.zeros((angles.size, 2, 2), dtype=np.complex128)
    out[:, 0, 0] = c
    out[:, 1, 1] = c
    out[:, 0, 1] = -1j * s
    out[:, 1, 0] = -1j * s
    return out


def ry_batch(angles: np.ndarray) -> np.ndarray:
    """``(batch, 2, 2)`` stack of RY matrices, one per angle."""
    c, s = np.cos(angles / 2), np.sin(angles / 2)
    out = np.zeros((angles.size, 2, 2), dtype=np.complex128)
    out[:, 0, 0] = c
    out[:, 1, 1] = c
    out[:, 0, 1] = -s
    out[:, 1, 0] = s
    return out


def rz_batch(angles: np.ndarray) -> np.ndarray:
    """``(batch, 2, 2)`` stack of RZ matrices, one per angle."""
    e = np.exp(-0.5j * angles)
    out = np.zeros((angles.size, 2, 2), dtype=np.complex128)
    out[:, 0, 0] = e
    out[:, 1, 1] = e.conjugate()
    return out


def phase_batch(angles: np.ndarray) -> np.ndarray:
    """``(batch, 2, 2)`` stack of phase gates, one per angle."""
    out = np.zeros((angles.size, 2, 2), dtype=np.complex128)
    out[:, 0, 0] = 1.0
    out[:, 1, 1] = np.exp(1j * angles)
    return out


def rotation_batch_xp(kind: str, angles, xp) -> np.ndarray:
    """xp-generic ``(batch, 2, 2)`` rotation stacks (see the ``*_batch``
    builders above for the NumPy fast path these mirror).

    ``angles`` may already live on ``xp``'s device; all trig runs in
    complex128 from the start, so the same expression works on libraries
    (torch) that refuse complex-scalar x float-tensor arithmetic.
    """
    a = xp.ascomplex(angles)
    if kind == "rx":
        c, s = xp.cos(a / 2.0), xp.sin(a / 2.0)
        rows = (c, -1j * s), (-1j * s, c)
    elif kind == "ry":
        c, s = xp.cos(a / 2.0), xp.sin(a / 2.0)
        rows = (c, -s), (s, c)
    elif kind == "rz":
        e = xp.exp(-0.5j * a)
        rows = (e, 0.0 * e), (0.0 * e, xp.conj(e))
    elif kind == "phase":
        e = xp.exp(1j * a)
        rows = (1.0 + 0.0 * e, 0.0 * e), (0.0 * e, e)
    else:
        raise KeyError(f"unknown batched rotation {kind!r}")
    return xp.stack(
        [xp.stack(list(row), axis=-1) for row in rows], axis=-2
    )


def ry(theta: float) -> np.ndarray:
    """Rotation about Y: ``exp(-i theta Y / 2)``."""
    c, s = np.cos(theta / 2), np.sin(theta / 2)
    return np.array([[c, -s], [s, c]], dtype=np.complex128)


def rz(theta: float) -> np.ndarray:
    """Rotation about Z: ``exp(-i theta Z / 2)``."""
    e = np.exp(-1j * theta / 2)
    return np.array([[e, 0], [0, e.conjugate()]], dtype=np.complex128)


def phase(theta: float) -> np.ndarray:
    """Diagonal phase gate ``diag(1, e^{i theta})``."""
    return np.array([[1, 0], [0, np.exp(1j * theta)]], dtype=np.complex128)


def _controlled(u: np.ndarray) -> np.ndarray:
    out = np.eye(4, dtype=np.complex128)
    out[2:, 2:] = u
    return out


def crx(theta: float) -> np.ndarray:
    """Controlled-RX on (control, target)."""
    return _controlled(rx(theta))


def cry(theta: float) -> np.ndarray:
    """Controlled-RY on (control, target)."""
    return _controlled(ry(theta))


def crz(theta: float) -> np.ndarray:
    """Controlled-RZ on (control, target)."""
    return _controlled(rz(theta))


FIXED_GATES: dict[str, np.ndarray] = {
    "i": I2,
    "x": X,
    "y": Y,
    "z": Z,
    "h": H,
    "s": S,
    "sdg": SDG,
    "t": T,
    "tdg": TDG,
    "cnot": CNOT,
    "cx": CNOT,
    "cz": CZ,
    "swap": SWAP,
}

PARAMETRIC_GATES: dict[str, Callable[[float], np.ndarray]] = {
    "rx": rx,
    "ry": ry,
    "rz": rz,
    "phase": phase,
    "crx": crx,
    "cry": cry,
    "crz": crz,
}

GATE_NUM_QUBITS: dict[str, int] = {
    **{name: 1 for name in ("i", "x", "y", "z", "h", "s", "sdg", "t", "tdg", "rx", "ry", "rz", "phase")},
    **{name: 2 for name in ("cnot", "cx", "cz", "swap", "crx", "cry", "crz")},
}

#: Gates whose generator is a Pauli with eigenvalues +-1/2 -- the exact
#: two-term parameter-shift rule (shift +-pi/2, coefficient 1/2) applies.
PAULI_ROTATIONS: frozenset[str] = frozenset({"rx", "ry", "rz"})


def is_parametric(name: str) -> bool:
    """True when the gate named ``name`` takes an angle parameter."""
    return name in PARAMETRIC_GATES


def gate_matrix(name: str, param: float | None = None) -> np.ndarray:
    """Resolve a gate name (and optional angle) to its dense matrix."""
    key = name.lower()
    if key in FIXED_GATES:
        if param is not None:
            raise ValueError(f"gate {name!r} takes no parameter")
        return FIXED_GATES[key]
    if key in PARAMETRIC_GATES:
        if param is None:
            raise ValueError(f"gate {name!r} requires a parameter")
        return PARAMETRIC_GATES[key](float(param))
    raise KeyError(f"unknown gate {name!r}")
