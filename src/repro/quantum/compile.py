"""Ahead-of-time circuit compilation: gate fusion + a compile cache.

The post-variational hot loop (paper Algorithm 1) evaluates the *same* fixed
circuits ``U(theta_j) S(x_i)`` over every data point, so the naive simulator
spends its time re-walking identical gate lists -- one einsum per gate per
call -- and re-building gate matrices that never change.  Fixed circuits are
exactly the case where aggressive ahead-of-time compilation pays off (paper
Sec. VIII; the distributed gate-queue grouping of qibotf and VQNet's
precompiled hybrid-network graphs make the same bet).

Two pieces:

* :func:`compile_circuit` partitions a bound circuit's gate list into
  contiguous blocks whose combined support is at most ``max_width`` qubits
  (:func:`repro.quantum.transpile.fuse_blocks`), fuses every block into a
  single dense unitary, and returns a :class:`CompiledCircuit` that executes
  one :func:`~repro.quantum.statevector.apply_matrix_batch` call per block
  instead of per gate.

* A structure-keyed LRU :class:`CompileCache` (circuit fingerprint -> fused
  program) so the per-sample encoding loop and the per-shift Ansatz ensemble
  reuse compiled artifacts across the whole Q-matrix sweep.  Compiled
  programs are plain dataclasses of NumPy arrays, hence picklable, so one
  parent-side compile is shipped to every
  :class:`~repro.hpc.executor.ParallelExecutor` process worker.

The fusion-width trade-off: a block on ``k`` qubits costs one
``(2^k, 2^k) @ (batch, 2^k, 2^(n-k))`` contraction, so wider blocks amortise
more gates per einsum but each einsum touches a ``2^k``-times larger matrix.
``k=3`` is the sweet spot for the paper's 4-8 qubit circuits (measured in
``benchmarks/test_compile_speedup.py``).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.quantum.circuit import Circuit, Operation
from repro.quantum.gates import gate_matrix
from repro.quantum.statevector import apply_matrix_batch, zero_state
from repro.quantum.transpile import fuse_blocks

__all__ = [
    "DEFAULT_FUSION_WIDTH",
    "FusedBlock",
    "CompiledCircuit",
    "ShardGroup",
    "plan_shard_groups",
    "CompileCache",
    "CacheInfo",
    "resolve_fusion_width",
    "compile_circuit",
    "compile_cache_info",
    "clear_compile_cache",
]

#: Fusion width selected by ``compile="auto"``.
DEFAULT_FUSION_WIDTH = 3


def resolve_fusion_width(knob: str | int | None) -> int | None:
    """Map the user-facing ``compile`` knob to a fusion width.

    ``"off"``/``None`` -> ``None`` (no compilation), ``"auto"`` -> the
    default width, an integer ``>= 1`` -> that width.
    """
    if knob is None or knob == "off":
        return None
    if knob == "auto":
        return DEFAULT_FUSION_WIDTH
    if isinstance(knob, (int, np.integer)) and not isinstance(knob, bool):
        if knob < 1:
            raise ValueError(f"fusion width {knob} must be >= 1")
        return int(knob)
    raise ValueError(f'compile must be "auto", "off" or an int >= 1, got {knob!r}')


@dataclass(frozen=True)
class FusedBlock:
    """One fused segment: a dense unitary on a small qubit support.

    ``qubits`` are global indices in ascending order; ``qubits[0]`` is the
    most significant bit of a ``matrix`` row index (the library-wide
    big-endian convention).
    """

    qubits: tuple[int, ...]
    matrix: np.ndarray
    source_gates: int

    @property
    def width(self) -> int:
        return len(self.qubits)


@dataclass(frozen=True)
class CompiledCircuit:
    """A fused, ready-to-execute program equivalent to its source circuit.

    Contains only tuples and NumPy arrays, so instances pickle cheaply --
    the property that lets one parent-side compilation be shipped to every
    process-pool worker.
    """

    num_qubits: int
    blocks: tuple[FusedBlock, ...]
    fusion_width: int
    source_gates: int
    name: str = "compiled"

    @property
    def num_blocks(self) -> int:
        return len(self.blocks)

    @property
    def gate_reduction(self) -> float:
        """Fraction of per-call kernel launches eliminated by fusion."""
        if self.source_gates == 0:
            return 0.0
        return 1.0 - self.num_blocks / self.source_gates

    def apply(self, states: np.ndarray, *, xp=None) -> np.ndarray:
        """Evolve ``states`` (1-D state or ``(batch, 2**n)``) through the program.

        The batch stays in ``(batch, 2, ..., 2)`` tensor form across all
        blocks -- one BLAS-grade :func:`numpy.tensordot` per fused block and
        a single contiguity copy at the end, instead of the per-gate
        reshape/copy round-trips of the naive engine.

        ``xp`` selects the array namespace (:mod:`repro.xp`): ``None`` or
        native NumPy keeps this body bit-identical; otherwise the same
        tensordot walk runs on that library, with block matrices moved
        host->device once per namespace via the constant memo.
        """
        if xp is None or xp.native:
            states = np.asarray(states, dtype=np.complex128)
            squeeze = states.ndim == 1
            batch = states[None, :] if squeeze else states
            if batch.ndim != 2 or batch.shape[1] != 2**self.num_qubits:
                raise ValueError(
                    f"state shape {states.shape} incompatible with {self.num_qubits} qubits"
                )
            b, dim = batch.shape
            tensor = batch.reshape((b,) + (2,) * self.num_qubits)
            for block in self.blocks:
                k = block.width
                gate = block.matrix.reshape((2,) * (2 * k))
                axes = [1 + q for q in block.qubits]
                # tensordot output: k gate-output axes first, then the untouched
                # axes in original relative order; moveaxis restores the layout
                # (block.qubits is sorted ascending, matching the gate's local
                # big-endian ordering).
                tensor = np.tensordot(gate, tensor, axes=(list(range(k, 2 * k)), axes))
                tensor = np.moveaxis(tensor, range(k), axes)
            out = np.ascontiguousarray(tensor.reshape(b, dim))
            return out[0] if squeeze else out

        states = xp.ascomplex(states)
        squeeze = states.ndim == 1
        batch = states[None, :] if squeeze else states
        if batch.ndim != 2 or int(batch.shape[1]) != 2**self.num_qubits:
            raise ValueError(
                f"state shape {tuple(states.shape)} incompatible with "
                f"{self.num_qubits} qubits"
            )
        b, dim = (int(s) for s in batch.shape)
        tensor = batch.reshape((b,) + (2,) * self.num_qubits)
        for block in self.blocks:
            k = block.width
            gate = xp.to_device_cached(block.matrix).reshape((2,) * (2 * k))
            axes = [1 + q for q in block.qubits]
            tensor = xp.tensordot(gate, tensor, axes=(list(range(k, 2 * k)), axes))
            tensor = xp.moveaxis(tensor, tuple(range(k)), tuple(axes))
        out = xp.ascontiguous(tensor.reshape(b, dim))
        return out[0] if squeeze else out

    def run(self, state: np.ndarray | None = None) -> np.ndarray:
        """Like :func:`~repro.quantum.statevector.run_circuit`: default |0..0>."""
        if state is None:
            state = zero_state(self.num_qubits)
        return self.apply(state)

    def unitary(self) -> np.ndarray:
        """Dense ``(2**n, 2**n)`` unitary of the whole program (tests/debug)."""
        return np.ascontiguousarray(self.apply(np.eye(2**self.num_qubits)).T)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CompiledCircuit({self.name!r}, qubits={self.num_qubits}, "
            f"blocks={self.num_blocks} from {self.source_gates} gates, "
            f"k={self.fusion_width})"
        )


@dataclass(frozen=True)
class ShardGroup:
    """A run of fused blocks executable with zero communication.

    ``global_qubits`` names the logical qubits parked in the rank-selecting
    register slots for the run: the group's blocks never touch them, so on
    a sharded simulator every block applies with the node-local kernel (the
    qibotf ``DeviceQueues`` pattern).  ``global_qubits is None`` marks a
    dense-fallback step: a single block too wide for the local register,
    applied with the generic multi-rank dense kernel instead.
    """

    global_qubits: tuple[int, ...] | None
    blocks: tuple[FusedBlock, ...]


def plan_shard_groups(
    compiled: CompiledCircuit, num_global: int
) -> tuple[ShardGroup, ...]:
    """Partition a compiled program into communication-free gate groups.

    Greedy left-to-right walk: blocks accumulate into the current group
    while their combined support fits in the ``n - num_global`` local
    qubits; on overflow the group closes and the next one starts.  Each
    closed group's global qubits are chosen among the qubits it never
    touches, preferring the previous group's globals so consecutive groups
    need few (often zero) qubit remaps.  Concatenating the groups' blocks
    reproduces the program's block order exactly.
    """
    if not isinstance(num_global, (int, np.integer)) or isinstance(num_global, bool):
        raise ValueError(f"num_global must be an int, got {num_global!r}")
    num_global = int(num_global)
    n = compiled.num_qubits
    if not 0 <= num_global <= n:
        raise ValueError(f"num_global={num_global} out of range for {n} qubits")
    if num_global == 0:
        return (ShardGroup((), compiled.blocks),)
    max_support = n - num_global

    groups: list[ShardGroup] = []
    current: list[FusedBlock] = []
    touched: set[int] = set()
    prev_globals: tuple[int, ...] = tuple(range(num_global))

    def close() -> None:
        nonlocal current, touched, prev_globals
        if not current:
            return
        free = [q for q in prev_globals if q not in touched]
        free += [q for q in range(n) if q not in touched and q not in free]
        chosen = tuple(sorted(free[:num_global]))
        groups.append(ShardGroup(chosen, tuple(current)))
        prev_globals = chosen
        current, touched = [], set()

    for block in compiled.blocks:
        if block.width > max_support:
            # Too wide to ever be communication-free: its own dense step.
            close()
            groups.append(ShardGroup(None, (block,)))
            continue
        merged = touched | set(block.qubits)
        if current and len(merged) > max_support:
            close()
            merged = set(block.qubits)
        current.append(block)
        touched = merged
    close()
    return tuple(groups)


def _block_unitary(support: Sequence[int], ops: Sequence[Operation]) -> np.ndarray:
    """Dense unitary of ``ops`` restricted to ``support`` (local big-endian).

    Runs the block's gates over the rows of an identity matrix: row ``i``
    ends as ``U e_i``, so the accumulated array is ``U^T``.
    """
    local = {q: i for i, q in enumerate(support)}
    states = np.eye(2 ** len(support), dtype=np.complex128)
    for op in ops:
        states = apply_matrix_batch(
            states, gate_matrix(op.gate, op.param), [local[q] for q in op.qubits]
        )
    return np.ascontiguousarray(states.T)


def _compile_bound(circuit: Circuit, max_width: int) -> CompiledCircuit:
    """Fuse ``circuit`` (bound) into a :class:`CompiledCircuit`, uncached."""
    blocks = tuple(
        FusedBlock(support, _block_unitary(support, ops), len(ops))
        for support, ops in fuse_blocks(circuit, max_width)
    )
    return CompiledCircuit(
        num_qubits=circuit.num_qubits,
        blocks=blocks,
        fusion_width=max_width,
        source_gates=circuit.num_gates,
        name=f"{circuit.name}[k={max_width}]",
    )


@dataclass(frozen=True)
class CacheInfo:
    """Snapshot of compile-cache statistics."""

    hits: int
    misses: int
    currsize: int
    maxsize: int


class CompileCache:
    """Thread-safe LRU map from circuit fingerprint to compiled program.

    Keys come from :meth:`Circuit.fingerprint` plus the fusion width and the
    array-backend name, so the same structure bound at different angles
    occupies distinct entries while a re-bound identical circuit hits, and
    switching ``array_backend`` mid-session can never serve a program
    associated with another library's device state.  Bounded so long sweeps
    over per-sample encoders cannot grow memory without limit.
    """

    def __init__(self, maxsize: int = 256):
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.maxsize = int(maxsize)
        self._entries: OrderedDict[tuple, CompiledCircuit] = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0

    def get(
        self, circuit: Circuit, max_width: int, array_backend: str = "numpy"
    ) -> CompiledCircuit:
        """Fetch (or compile and insert) the fused program for ``circuit``."""
        key = (max_width, array_backend) + circuit.fingerprint()
        return self.get_by_key(key, lambda: _compile_bound(circuit, max_width))

    def get_by_key(self, key: tuple, factory):
        """LRU lookup under an explicit key, compiling via ``factory`` on miss.

        The generic entry point behind :meth:`get`; the batched engine uses
        it with *template* fingerprints (which bound-circuit fingerprints
        cannot express) while sharing the same LRU/statistics machinery.
        """
        with self._lock:
            program = self._entries.get(key)
            if program is not None:
                self._hits += 1
                self._entries.move_to_end(key)
                return program
            self._misses += 1
        # Compile outside the lock: fusion is the expensive part and other
        # threads compiling different circuits need not serialise on it.
        program = factory()
        with self._lock:
            self._entries[key] = program
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
        return program

    def info(self) -> CacheInfo:
        with self._lock:
            return CacheInfo(self._hits, self._misses, len(self._entries), self.maxsize)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._hits = 0
            self._misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


#: Process-wide cache used by ``compile_circuit`` unless one is passed in.
GLOBAL_COMPILE_CACHE = CompileCache()


def compile_circuit(
    circuit: Circuit,
    max_width: int | str = DEFAULT_FUSION_WIDTH,
    params: Sequence[float] | None = None,
    cache: CompileCache | None = GLOBAL_COMPILE_CACHE,
    array_backend: str = "numpy",
) -> CompiledCircuit:
    """Compile ``circuit`` into a fused program.

    ``max_width`` accepts the same values as the ``compile`` knob minus
    ``"off"`` (``"auto"`` or an int >= 1).  Unbound circuits require
    ``params``.  Pass ``cache=None`` to force a fresh compilation.
    ``array_backend`` names the array namespace the program will execute
    under -- it only partitions the cache (compiled artifacts are always
    host NumPy), so programs can never leak across namespaces.
    """
    width = resolve_fusion_width(max_width)
    if width is None:
        raise ValueError('compile_circuit called with compilation disabled ("off")')
    if not circuit.is_bound:
        if params is None:
            raise ValueError(
                f"circuit has {circuit.num_parameters} unbound parameters"
            )
        circuit = circuit.bind(params)
    elif params is not None and len(params) != 0:
        raise ValueError("params given for an already-bound circuit")
    if cache is None:
        return _compile_bound(circuit, width)
    return cache.get(circuit, width, array_backend)


def compile_cache_info() -> CacheInfo:
    """Statistics of the process-wide compile cache."""
    return GLOBAL_COMPILE_CACHE.info()


def clear_compile_cache() -> None:
    """Drop every entry (and reset counters) of the process-wide cache."""
    GLOBAL_COMPILE_CACHE.clear()
