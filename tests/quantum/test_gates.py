"""Gate-matrix unit and property tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quantum import gates


ALL_FIXED = sorted(gates.FIXED_GATES)
ALL_PARAM = sorted(gates.PARAMETRIC_GATES)


@pytest.mark.parametrize("name", ALL_FIXED)
def test_fixed_gates_are_unitary(name):
    u = gates.FIXED_GATES[name]
    assert np.allclose(u @ u.conj().T, np.eye(u.shape[0]), atol=1e-12)


@given(theta=st.floats(-10, 10), name=st.sampled_from(ALL_PARAM))
@settings(max_examples=60)
def test_parametric_gates_are_unitary(theta, name):
    u = gates.PARAMETRIC_GATES[name](theta)
    assert np.allclose(u @ u.conj().T, np.eye(u.shape[0]), atol=1e-10)


@given(a=st.floats(-5, 5), b=st.floats(-5, 5))
@settings(max_examples=40)
def test_rotation_composition(a, b):
    """Same-axis rotations compose additively."""
    for rot in (gates.rx, gates.ry, gates.rz):
        assert np.allclose(rot(a) @ rot(b), rot(a + b), atol=1e-10)


def test_rotations_at_zero_are_identity():
    for rot in (gates.rx, gates.ry, gates.rz):
        assert np.allclose(rot(0.0), np.eye(2))


def test_rotation_generators():
    """R_P(theta) = cos(theta/2) I - i sin(theta/2) P."""
    theta = 0.7321
    for rot, pauli in ((gates.rx, gates.X), (gates.ry, gates.Y), (gates.rz, gates.Z)):
        expected = np.cos(theta / 2) * np.eye(2) - 1j * np.sin(theta / 2) * pauli
        assert np.allclose(rot(theta), expected, atol=1e-12)


def test_pauli_involutions():
    for p in (gates.X, gates.Y, gates.Z):
        assert np.allclose(p @ p, np.eye(2))


def test_hadamard_conjugation():
    """H X H = Z and H Z H = X."""
    h = gates.H
    assert np.allclose(h @ gates.X @ h, gates.Z, atol=1e-12)
    assert np.allclose(h @ gates.Z @ h, gates.X, atol=1e-12)


def test_s_dagger():
    assert np.allclose(gates.S @ gates.SDG, np.eye(2))


def test_cnot_action():
    """CNOT with control = qubit 0 (MSB) flips the target for |10>, |11>."""
    states = np.eye(4)
    out = gates.CNOT @ states
    assert np.allclose(out[:, 0], states[:, 0])
    assert np.allclose(out[:, 1], states[:, 1])
    assert np.allclose(out[:, 2], states[:, 3])
    assert np.allclose(out[:, 3], states[:, 2])


def test_controlled_rotations_block_structure():
    theta = 1.234
    cu = gates.crx(theta)
    assert np.allclose(cu[:2, :2], np.eye(2))
    assert np.allclose(cu[2:, 2:], gates.rx(theta))


def test_gate_matrix_lookup():
    assert np.allclose(gates.gate_matrix("h"), gates.H)
    assert np.allclose(gates.gate_matrix("RX", 0.5), gates.rx(0.5))


def test_gate_matrix_errors():
    with pytest.raises(KeyError):
        gates.gate_matrix("nope")
    with pytest.raises(ValueError):
        gates.gate_matrix("h", 0.5)  # fixed gate with a parameter
    with pytest.raises(ValueError):
        gates.gate_matrix("rx")  # parametric gate without one


def test_is_parametric():
    assert gates.is_parametric("rx")
    assert not gates.is_parametric("h")
