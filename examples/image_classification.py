"""Binary image classification across all three post-variational strategies.

A compact version of the Table III experiment (paper Sec. VII.B): trains the
Ansatz-expansion, observable-construction and hybrid strategies plus the
classical and variational baselines on coat-vs-shirt, and prints the
comparison table.  Demonstrates strategy construction, the shared encoded
dataset, and per-strategy feature counts.

Run:  python examples/image_classification.py
"""

import numpy as np

from repro.core import (
    AnsatzExpansion,
    HybridStrategy,
    ObservableConstruction,
    PostVariationalClassifier,
    VariationalClassifier,
)
from repro.data import binary_coat_vs_shirt
from repro.ml import LogisticRegression, MLPClassifier, accuracy


def main() -> None:
    split = binary_coat_vs_shirt(train_per_class=100, test_per_class=25)
    flat_train = split.x_train.reshape(split.num_train, -1) / (2 * np.pi)
    flat_test = split.x_test.reshape(split.num_test, -1) / (2 * np.pi)

    rows: list[tuple[str, int, float, float]] = []

    logistic = LogisticRegression().fit(flat_train, split.y_train)
    rows.append(
        (
            "classical logistic",
            16,
            accuracy(split.y_train, logistic.predict(flat_train)),
            accuracy(split.y_test, logistic.predict(flat_test)),
        )
    )
    mlp = MLPClassifier(hidden=8, epochs=300, seed=0).fit(flat_train, split.y_train)
    rows.append(
        (
            "classical MLP",
            16,
            accuracy(split.y_train, mlp.predict(flat_train)),
            accuracy(split.y_test, mlp.predict(flat_test)),
        )
    )

    variational = VariationalClassifier(epochs=20).fit(split.x_train, split.y_train)
    rows.append(
        (
            "variational QNN",
            8,
            variational.score(split.x_train, split.y_train),
            variational.score(split.x_test, split.y_test),
        )
    )

    strategies = {
        "ansatz expansion R=1": AnsatzExpansion(order=1),
        "observable constr L=2": ObservableConstruction(qubits=4, locality=2),
        "hybrid R=1 L=1": HybridStrategy(order=1, locality=1),
    }
    for name, strategy in strategies.items():
        model = PostVariationalClassifier(strategy=strategy)
        model.fit(split.x_train, split.y_train)
        rows.append(
            (
                name,
                strategy.num_features,
                model.score(split.x_train, split.y_train),
                model.score(split.x_test, split.y_test),
            )
        )

    print(f"{'model':<24} {'features':>8} {'train acc':>10} {'test acc':>9}")
    for name, m, train, test in rows:
        print(f"{name:<24} {m:>8} {train:>10.3f} {test:>9.3f}")


if __name__ == "__main__":
    main()
