"""Pauli algebra and expectation-kernel tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quantum.observables import (
    PauliString,
    PauliSum,
    count_local_paulis,
    expectation,
    local_pauli_strings,
    pauli_product,
)

from tests.conftest import random_state

pauli_strings = st.text(alphabet="IXYZ", min_size=1, max_size=4)


def test_invalid_strings_rejected():
    with pytest.raises(ValueError):
        PauliString("")
    with pytest.raises(ValueError):
        PauliString("XA")


def test_locality_and_support():
    p = PauliString("XIZI")
    assert p.locality == 2
    assert p.support == (0, 2)
    assert not p.is_identity
    assert PauliString("II").is_identity


def test_shadow_norm():
    assert PauliString("XIZ").shadow_norm_squared() == 16.0
    assert PauliString("III").shadow_norm_squared() == 1.0


@given(a=pauli_strings, b=pauli_strings)
@settings(max_examples=100)
def test_product_matches_matrices(a, b):
    """phase * matrix(c) == matrix(a) @ matrix(b) for (phase, c) = a*b."""
    if len(a) != len(b):
        b = (b * len(a))[: len(a)]
    pa, pb = PauliString(a), PauliString(b)
    phase, pc = pa * pb
    assert np.allclose(phase * pc.to_matrix(), pa.to_matrix() @ pb.to_matrix(), atol=1e-12)


@given(a=pauli_strings, b=pauli_strings)
@settings(max_examples=100)
def test_commutation_matches_matrices(a, b):
    if len(a) != len(b):
        b = (b * len(a))[: len(a)]
    pa, pb = PauliString(a), PauliString(b)
    commutator = pa.to_matrix() @ pb.to_matrix() - pb.to_matrix() @ pa.to_matrix()
    assert pa.commutes_with(pb) == np.allclose(commutator, 0, atol=1e-12)


def test_known_products():
    assert pauli_product(PauliString("X"), PauliString("Y")) == (1j, PauliString("Z"))
    assert pauli_product(PauliString("Y"), PauliString("X")) == (-1j, PauliString("Z"))
    phase, res = pauli_product(PauliString("Z"), PauliString("Z"))
    assert phase == 1.0 and res.is_identity


def test_local_pauli_counts_eq18():
    """Eq. 18: sum_{l<=L} C(n,l) 3^l."""
    assert len(local_pauli_strings(4, 0)) == 1
    assert len(local_pauli_strings(4, 1)) == 13
    assert len(local_pauli_strings(4, 2)) == 67
    assert len(local_pauli_strings(4, 3)) == 175
    assert len(local_pauli_strings(4, 4)) == 256  # the full 4^n basis
    for n, loc in [(2, 1), (3, 2), (5, 3)]:
        assert len(local_pauli_strings(n, loc)) == count_local_paulis(n, loc)


def test_local_pauli_enumeration_is_deterministic_and_unique():
    strings = [p.string for p in local_pauli_strings(3, 2)]
    assert strings == [p.string for p in local_pauli_strings(3, 2)]
    assert len(set(strings)) == len(strings)
    assert strings[0] == "III"  # identity first (bias feature)


@given(s=pauli_strings, seed=st.integers(0, 2**31 - 1))
@settings(max_examples=60, deadline=None)
def test_expectation_matches_dense(s, seed):
    rng = np.random.default_rng(seed)
    p = PauliString(s)
    psi = random_state(p.num_qubits, rng)
    ours = expectation(psi, p)
    ref = float(np.real(np.vdot(psi, p.to_matrix() @ psi)))
    assert ours == pytest.approx(ref, abs=1e-10)


def test_expectation_batched():
    rng = np.random.default_rng(0)
    batch = np.stack([random_state(2, rng) for _ in range(6)])
    p = PauliString("XY")
    vals = expectation(batch, p)
    assert vals.shape == (6,)
    for i in range(6):
        assert vals[i] == pytest.approx(expectation(batch[i], p))


def test_expectation_bounds():
    rng = np.random.default_rng(3)
    psi = random_state(3, rng)
    for p in local_pauli_strings(3, 3):
        assert -1.0 - 1e-9 <= expectation(psi, p) <= 1.0 + 1e-9


def test_pauli_sum_merging_and_ops():
    ps = PauliSum([(1.0, "XI"), (2.0, "XI"), (0.5, "ZZ")])
    assert ps.num_terms == 2
    assert ps.coefficient("XI") == pytest.approx(3.0)
    doubled = 2.0 * ps
    assert doubled.coefficient("ZZ") == pytest.approx(1.0)
    total = ps + ps
    assert total.coefficient("XI") == pytest.approx(6.0)


def test_pauli_sum_zero_terms_dropped():
    ps = PauliSum([(1.0, "X"), (-1.0, "X")])
    assert ps.num_terms == 0


def test_pauli_sum_product_matches_dense():
    a = PauliSum([(1.0, "XI"), (0.5, "ZZ")])
    b = PauliSum([(2.0, "YI"), (1.0, "IZ")])
    ours = (a @ b).to_matrix()
    ref = a.to_matrix() @ b.to_matrix()
    assert np.allclose(ours, ref, atol=1e-12)


def test_pauli_sum_expectation_linear():
    rng = np.random.default_rng(9)
    psi = random_state(2, rng)
    ps = PauliSum([(0.3, "XI"), (-0.7, "ZZ")])
    expected = 0.3 * expectation(psi, PauliString("XI")) - 0.7 * expectation(
        psi, PauliString("ZZ")
    )
    assert expectation(psi, ps) == pytest.approx(expected)


def test_pauli_sum_mixed_widths_rejected():
    with pytest.raises(ValueError):
        PauliSum([(1.0, "X"), (1.0, "XX")])


def test_expectation_dense_matrix_path():
    rng = np.random.default_rng(11)
    psi = random_state(2, rng)
    m = PauliString("ZZ").to_matrix()
    assert expectation(psi, m) == pytest.approx(expectation(psi, PauliString("ZZ")))
