"""E14 -- batched structure-shared execution vs the per-sample oracle.

The Q-matrix hot loop evaluates one template ``U(theta_j) S(x_i)`` per data
point; the per-sample engine must bind the encoding angles into the gate
matrices and re-walk the circuit for every row.  The batched engine
(:mod:`repro.quantum.batched`) compiles the template once -- shared fused
blocks + per-sample angle chains -- and evolves the whole batch in one
stacked pass.  Measured here on the reference workload (8 qubits, depth
>= 40, batch 256, locality-1 Pauli block) with the acceptance bar of a
>= 2x speedup over sample-at-a-time bind + evolve + measure; the measured
number is typically far larger (see BENCH_batched.json).

Also reports the end-to-end Q-matrix sweep delta: ``generate_features``
under ``vectorize="auto"`` vs ``"off"`` (both compiled), where the win is
bounded by the encoder share of the sweep.

Smoke mode (``BATCHED_BENCH_SMOKE=1``, the CI perf-guard job) shrinks the
workload and gates on "batched is not slower than the per-sample oracle"
instead of the full 2x bar.  Results are written to ``BENCH_batched.json``
only when ``BENCH_WRITE=1`` (opt-in, so local runs never dirty the tree).
"""

from __future__ import annotations

import time

import numpy as np

from benchmarks.conftest import best_of, env_flag, write_bench_record
from repro.api import ExecutionConfig
from repro.core.ansatz import hardware_efficient_ansatz
from repro.core.features import generate_features
from repro.core.strategies import AnsatzExpansion
from repro.data.encoding import encoding_template
from repro.quantum.batched import compile_parametric, extend_template
from repro.quantum.circuit import Circuit
from repro.quantum.observables import expectation, local_pauli_strings
from repro.quantum.statevector import run_circuit

SMOKE = env_flag("BATCHED_BENCH_SMOKE")

NUM_QUBITS = 8
ROWS = 4
TARGET_DEPTH = 10 if SMOKE else 40
BATCH = 16 if SMOKE else 256
REPEATS = 2 if SMOKE else 5
LOCALITY = 1


def build_ansatz() -> Circuit:
    """A bound depth>=TARGET_DEPTH hardware-efficient Ansatz instance."""
    rng = np.random.default_rng(0)
    circuit = Circuit(NUM_QUBITS, name="qmatrix-ansatz")
    while circuit.depth() < TARGET_DEPTH:
        for q in range(NUM_QUBITS):
            circuit.append("ry", q, float(rng.uniform(-np.pi, np.pi)))
            circuit.append("rz", q, float(rng.uniform(-np.pi, np.pi)))
        for q in range(NUM_QUBITS - 1):
            circuit.append("cnot", (q, q + 1))
    return circuit


def run_benchmark():
    rng = np.random.default_rng(1)
    angles = rng.uniform(0, 2 * np.pi, size=(BATCH, ROWS, NUM_QUBITS))
    observables = local_pauli_strings(NUM_QUBITS, LOCALITY)
    template = extend_template(encoding_template(ROWS, NUM_QUBITS), build_ansatz())

    compile_start = time.perf_counter()
    program = compile_parametric(template)
    compile_time = time.perf_counter() - compile_start

    flat = angles.reshape(BATCH, -1)

    def per_sample_block() -> np.ndarray:
        """Sample-at-a-time Q-matrix block: bind, evolve, measure per row."""
        block = np.empty((BATCH, len(observables)))
        for i in range(BATCH):
            state = run_circuit(template.bind(flat[i]))
            for b, obs in enumerate(observables):
                block[i, b] = expectation(state, obs)
        return block

    def batched_block() -> np.ndarray:
        """One stacked pass + batched Pauli expectations."""
        states = program.apply_batch(angles)
        block = np.empty((BATCH, len(observables)))
        for b, obs in enumerate(observables):
            block[:, b] = expectation(states, obs)
        return block

    oracle = per_sample_block()
    batched = batched_block()
    max_err = float(np.abs(oracle - batched).max())

    t_per_sample = best_of(per_sample_block, REPEATS)
    t_batched = best_of(batched_block, REPEATS)

    # End-to-end sweeps: the same knob through generate_features (chunked
    # dispatch, streaming assembly).  A single-instance strategy takes the
    # fully stacked path (encoder + Ansatz as one program per job); a
    # multi-instance ensemble shares one batched-encoder pass across all
    # instances.  Both wins are bounded by the encoder share of the sweep
    # since the "off" arm already batches chunk evolution through the
    # compiled engine (PR 1).
    def sweep_delta(strategy) -> dict:
        cfg = ExecutionConfig(compile="auto", chunk_size=64)
        q_off = generate_features(strategy, angles, config=cfg.merged(vectorize="off"))
        q_auto = generate_features(strategy, angles, config=cfg.merged(vectorize="auto"))
        t_off = best_of(
            lambda: generate_features(
                strategy, angles, config=cfg.merged(vectorize="off")
            ),
            repeats=min(REPEATS, 3),
        )
        t_auto = best_of(
            lambda: generate_features(
                strategy, angles, config=cfg.merged(vectorize="auto")
            ),
            repeats=min(REPEATS, 3),
        )
        return {
            "num_ansatze": strategy.num_ansatze,
            "t_vectorize_off_s": t_off,
            "t_vectorize_auto_s": t_auto,
            "speedup": t_off / t_auto,
            "max_abs_err": float(np.abs(q_off - q_auto).max()),
        }

    sweep_single = sweep_delta(
        AnsatzExpansion(circuit=hardware_efficient_ansatz(NUM_QUBITS, 2), order=0)
    )
    sweep_multi = sweep_delta(
        AnsatzExpansion(circuit=hardware_efficient_ansatz(NUM_QUBITS, 1), order=1)
    )

    return {
        "benchmark": "batched_speedup",
        "workload": {
            "num_qubits": NUM_QUBITS,
            "rows": ROWS,
            "ansatz_depth": template.depth(),
            "template_gates": template.num_gates,
            "angle_slots": program.num_slots,
            "batch": BATCH,
            "observables": len(observables),
            "smoke": SMOKE,
        },
        "program": {
            "blocks": program.num_blocks,
            "chains": program.num_chains,
            "fusion_width": program.fusion_width,
            "compile_time_s": compile_time,
        },
        "t_per_sample_s": t_per_sample,
        "t_batched_s": t_batched,
        "speedup": t_per_sample / t_batched,
        "max_abs_err": max_err,
        "sweep_single_instance": sweep_single,
        "sweep_multi_instance": sweep_multi,
    }


def test_batched_beats_per_sample_oracle():
    result = run_benchmark()
    write_bench_record("BENCH_batched.json", result)

    print("\n=== E14: batched structure-shared execution ===")
    w, prog = result["workload"], result["program"]
    print(
        f"workload: {w['num_qubits']} qubits, depth {w['ansatz_depth']}, "
        f"{w['template_gates']} gates ({w['angle_slots']} angle slots), "
        f"batch {w['batch']}, {w['observables']} observables"
    )
    print(
        f"template -> {prog['blocks']} fused blocks + {prog['chains']} angle "
        f"chains (k={prog['fusion_width']}), compiled once in "
        f"{prog['compile_time_s']*1e3:.1f} ms"
    )
    print(
        f"per-sample {result['t_per_sample_s']*1e3:.1f} ms  "
        f"batched {result['t_batched_s']*1e3:.1f} ms  "
        f"speedup {result['speedup']:.1f}x  "
        f"(max |err| {result['max_abs_err']:.1e})"
    )
    for label, key in (
        ("single-instance", "sweep_single_instance"),
        ("multi-instance", "sweep_multi_instance"),
    ):
        sweep = result[key]
        print(
            f"end-to-end sweep, {label} (p={sweep['num_ansatze']}): "
            f"off {sweep['t_vectorize_off_s']*1e3:.1f} ms  "
            f"auto {sweep['t_vectorize_auto_s']*1e3:.1f} ms  "
            f"speedup {sweep['speedup']:.2f}x  (max |err| {sweep['max_abs_err']:.1e})"
        )

    # Correctness before speed: the stacked pass is the same map.
    assert result["max_abs_err"] < 1e-10
    assert result["sweep_single_instance"]["max_abs_err"] < 1e-10
    assert result["sweep_multi_instance"]["max_abs_err"] < 1e-10
    if SMOKE:
        # The CI perf-guard gate: batched must never lose to the oracle.
        assert result["speedup"] >= 1.0
    else:
        # The tentpole acceptance bar on the reference workload.
        assert result["speedup"] >= 2.0
