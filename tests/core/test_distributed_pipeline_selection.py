"""Tests: SPMD feature generation / data-parallel head, greedy selection."""

import numpy as np
import pytest

from repro.core.distributed_pipeline import (
    fit_logistic_spmd,
    generate_features_spmd,
)
from repro.core.features import generate_features
from repro.core.selection import greedy_forward_selection
from repro.core.strategies import ObservableConstruction
from repro.hpc.comm import run_spmd
from repro.ml.logistic import LogisticRegression


@pytest.fixture(scope="module")
def task():
    rng = np.random.default_rng(0)
    angles = rng.uniform(0, 2 * np.pi, (36, 4, 4))
    y = (angles[:, 0, 0] > np.pi).astype(int)
    return angles, y


def test_spmd_features_match_serial(task):
    angles, _ = task
    strategy = ObservableConstruction(qubits=4, locality=1)
    serial = generate_features(strategy, angles)

    def prog(comm):
        _, full = generate_features_spmd(comm, strategy, angles, allgather=True)
        return full

    results = run_spmd(prog, 4)
    for full in results:
        assert np.allclose(full, serial)


def test_spmd_features_with_persistent_runtime(task):
    """Each rank may drive a node-local persistent pool; numbers unchanged."""
    from repro.hpc.executor import ParallelExecutor

    angles, _ = task
    strategy = ObservableConstruction(qubits=4, locality=1)
    serial = generate_features(strategy, angles)

    def prog(comm):
        with ParallelExecutor("thread", 2) as ex:
            _, full = generate_features_spmd(
                comm,
                strategy,
                angles,
                allgather=True,
                executor=ex,
                dispatch_policy="lpt",
            )
        return full

    for full in run_spmd(prog, 2):
        assert np.allclose(full, serial)


def test_spmd_features_deterministic_with_shots(task):
    """At a fixed rank count, stochastic SPMD feature generation is
    reproducible, and estimates stay within shot-noise of the exact Q."""
    angles, _ = task
    strategy = ObservableConstruction(qubits=4, locality=1)

    def make_prog():
        def prog(comm):
            _, full = generate_features_spmd(
                comm, strategy, angles, estimator="shots", shots=512, seed=9, allgather=True
            )
            return full
        return prog

    a = run_spmd(make_prog(), 4)[0]
    b = run_spmd(make_prog(), 4)[0]
    assert np.array_equal(a, b)
    exact = generate_features(strategy, angles)
    assert np.max(np.abs(a - exact)) < 0.25


def test_spmd_local_blocks_cover(task):
    angles, _ = task
    strategy = ObservableConstruction(qubits=4, locality=1)

    def prog(comm):
        rows, block = generate_features_spmd(comm, strategy, angles)
        return rows, block.shape

    results = run_spmd(prog, 3)
    covered = sorted(int(i) for rows, _ in results for i in rows)
    assert covered == list(range(36))


def test_data_parallel_logistic_matches_serial(task):
    angles, y = task
    strategy = ObservableConstruction(qubits=4, locality=1)
    q = generate_features(strategy, angles)
    serial = LogisticRegression(l2=1.0).fit(q, y)

    def prog(comm):
        rows, block = generate_features_spmd(comm, strategy, angles)
        return fit_logistic_spmd(comm, block, y[rows], l2=1.0, iterations=4000)

    results = run_spmd(prog, 4)
    # All ranks agree bit-for-bit.
    for r in results[1:]:
        assert np.array_equal(r.coef, results[0].coef)
    # And match the serial L-BFGS optimum closely.
    assert np.allclose(results[0].coef, serial.coef_, atol=5e-2)
    # Predictions agree on the training set.
    from repro.ml.losses import sigmoid

    spmd_pred = (sigmoid(q @ results[0].coef + results[0].intercept) >= 0.5).astype(int)
    assert np.mean(spmd_pred == serial.predict(q)) > 0.97


def test_fit_logistic_spmd_validation():
    def prog(comm):
        return fit_logistic_spmd(comm, np.empty((0, 3)), np.empty(0))

    from repro.hpc.comm import SpmdError

    with pytest.raises(SpmdError):
        run_spmd(prog, 2)


# ------------------------------------------------------------- selection
def test_greedy_recovers_planted_support():
    rng = np.random.default_rng(1)
    q = rng.normal(size=(200, 30))
    support = [3, 11, 27]
    y = q[:, support] @ np.array([2.0, -1.5, 1.0])
    result = greedy_forward_selection(q, y, max_features=3)
    assert sorted(result.selected) == support
    assert result.train_loss_path[-1] < 1e-8


def test_greedy_loss_monotone():
    rng = np.random.default_rng(2)
    q = rng.normal(size=(80, 20))
    y = rng.normal(size=80)
    result = greedy_forward_selection(q, y, max_features=10)
    path = result.train_loss_path
    assert all(b <= a + 1e-12 for a, b in zip(path, path[1:], strict=False))


def test_greedy_validation_path():
    rng = np.random.default_rng(3)
    q = rng.normal(size=(100, 15))
    y = q[:, 2] * 3 + rng.normal(0, 0.1, 100)
    qv = rng.normal(size=(40, 15))
    yv = qv[:, 2] * 3 + rng.normal(0, 0.1, 40)
    result = greedy_forward_selection(q, y, max_features=5, q_val=qv, y_val=yv)
    assert result.selected[0] == 2  # strongest column found first
    assert len(result.validation_loss_path) == result.num_selected


def test_greedy_stops_when_residual_exhausted():
    q = np.eye(4)
    y = np.array([1.0, 0.0, 0.0, 0.0])
    result = greedy_forward_selection(q, y, max_features=4)
    assert result.num_selected == 1  # residual hits zero after one column


def test_greedy_on_quantum_features():
    """End-to-end: select a compact sub-ensemble of the 2-local features
    that matches the full ensemble's train RMSE within 10%."""
    rng = np.random.default_rng(4)
    angles = rng.uniform(0, 2 * np.pi, (60, 4, 4))
    y = 2.0 * (angles[:, 0, 0] > np.pi).astype(float) - 1.0
    q = generate_features(ObservableConstruction(qubits=4, locality=2), angles)
    result = greedy_forward_selection(q, y, max_features=20)
    assert result.num_selected <= 20
    assert result.train_loss_path[-1] < 0.5  # far below label scale 1.0


def test_greedy_validation_errors():
    q = np.ones((4, 2))
    with pytest.raises(ValueError):
        greedy_forward_selection(q, np.ones(3), 2)
    with pytest.raises(ValueError):
        greedy_forward_selection(q, np.ones(4), 0)
    with pytest.raises(ValueError):
        greedy_forward_selection(q, np.ones(4), 2, q_val=np.ones((2, 2)))
