"""Admission control and smooth weighted round-robin."""

from __future__ import annotations

import pytest

from repro.serve.fairness import (
    AdmissionController,
    BackpressureError,
    WeightedRoundRobin,
)


class TestAdmissionController:
    def test_depth_bound_per_tenant(self):
        ctrl = AdmissionController(max_depth=2)
        ctrl.try_acquire("a")
        ctrl.try_acquire("a")
        with pytest.raises(BackpressureError, match="max_queue_depth"):
            ctrl.try_acquire("a")
        ctrl.try_acquire("b")  # other tenants unaffected
        ctrl.release("a")
        ctrl.try_acquire("a")  # freed capacity admits again

    def test_cost_bound(self):
        ctrl = AdmissionController(max_depth=10, max_cost=5.0)
        ctrl.try_acquire("a", cost=3.0)
        with pytest.raises(BackpressureError, match="cost"):
            ctrl.try_acquire("a", cost=3.0)
        ctrl.try_acquire("a", cost=2.0)  # exactly at the bound admits

    def test_first_request_always_admits(self):
        ctrl = AdmissionController(max_depth=10, max_cost=1.0)
        ctrl.try_acquire("a", cost=100.0)  # oversize but first: admitted

    def test_release_clears_state(self):
        ctrl = AdmissionController(max_depth=4)
        ctrl.try_acquire("a", cost=2.0)
        assert ctrl.depth("a") == 1
        assert ctrl.depth() == 1
        ctrl.release("a", cost=2.0)
        assert ctrl.depth("a") == 0
        assert ctrl.snapshot() == {}

    def test_snapshot_shape(self):
        ctrl = AdmissionController(max_depth=4, max_cost=10.0)
        ctrl.try_acquire("b", cost=1.5)
        ctrl.try_acquire("a", cost=2.5)
        snap = ctrl.snapshot()
        assert list(snap) == ["a", "b"]  # sorted
        assert snap["a"] == {"depth": 1, "cost": 2.5}

    def test_invalid_bounds(self):
        with pytest.raises(ValueError, match="max_depth"):
            AdmissionController(max_depth=0)
        with pytest.raises(ValueError, match="max_cost"):
            AdmissionController(max_depth=1, max_cost=0.0)


class TestWeightedRoundRobin:
    def test_equal_weights_alternate(self):
        wrr = WeightedRoundRobin()
        picks = [wrr.pick(["a", "b"]) for _ in range(4)]
        assert sorted(picks[:2]) == ["a", "b"]
        assert sorted(picks[2:]) == ["a", "b"]

    def test_three_to_one_interleaves_smoothly(self):
        wrr = WeightedRoundRobin({"a": 3.0, "b": 1.0})
        picks = [wrr.pick(["a", "b"]) for _ in range(8)]
        assert picks.count("a") == 6 and picks.count("b") == 2
        # Smooth WRR interleaves (a a b a), never bursts (a a a b).
        assert picks[:4] in (["a", "a", "b", "a"], ["a", "b", "a", "a"])

    def test_sole_candidate_wins(self):
        wrr = WeightedRoundRobin({"a": 0.5})
        assert wrr.pick(["a"]) == "a"

    def test_nonpositive_weight_excluded_while_positive_exists(self):
        wrr = WeightedRoundRobin({"bad": 0.0})
        picks = {wrr.pick(["bad", "good"]) for _ in range(6)}
        assert picks == {"good"}

    def test_all_nonpositive_degrades_to_equal_share(self):
        wrr = WeightedRoundRobin({"a": 0.0, "b": -1.0})
        picks = [wrr.pick(["a", "b"]) for _ in range(4)]
        assert picks.count("a") == 2 and picks.count("b") == 2

    def test_empty_candidates_rejected(self):
        with pytest.raises(ValueError, match="candidate"):
            WeightedRoundRobin().pick([])

    def test_default_weight_must_be_positive(self):
        with pytest.raises(ValueError, match="default_weight"):
            WeightedRoundRobin(default_weight=0.0)
