"""Qubit-wise-commuting (QWC) measurement grouping.

Between the paper's two extremes -- one measurement setting per observable
(Proposition 1) and fully randomised settings (classical shadows,
Proposition 2) -- production QML stacks group observables into *qubit-wise
commuting* families: strings that agree (or are identity) on every site can
be read out from the **same** single-qubit-rotated samples.  One setting per
family replaces one per observable, cutting the Table II direct-measurement
budget by the grouping ratio with zero estimator bias.

This module provides greedy first-fit grouping (the standard heuristic),
the shared-sample estimator, and setting-count accounting used by the E8
extension bench.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.quantum.observables import PauliString
from repro.utils.rng import as_rng

__all__ = [
    "qubit_wise_commute",
    "group_qubit_wise",
    "MeasurementGroup",
    "measure_group",
]


def qubit_wise_commute(a: PauliString, b: PauliString) -> bool:
    """True when ``a`` and ``b`` agree or are identity on every qubit.

    Stronger than general commutation (XX and YY commute but are not QWC);
    exactly the condition for sharing one measurement basis.
    """
    if a.num_qubits != b.num_qubits:
        raise ValueError("qubit count mismatch")
    return all(
        ca == "I" or cb == "I" or ca == cb for ca, cb in zip(a.string, b.string, strict=True)
    )


@dataclass(frozen=True)
class MeasurementGroup:
    """A QWC family and the single basis that measures all its members.

    ``basis`` is a Pauli string with no identities: site i holds the letter
    every member requires there (or Z where all members are identity -- any
    choice works, Z needs no rotation).
    """

    members: tuple[PauliString, ...]
    basis: PauliString

    @property
    def size(self) -> int:
        return len(self.members)


def _merge_basis(strings: list[PauliString]) -> PauliString:
    n = strings[0].num_qubits
    chars = ["Z"] * n  # unconstrained sites measured in Z (no rotation)
    for s in strings:
        for i, c in enumerate(s.string):
            if c != "I":
                chars[i] = c
    return PauliString("".join(chars))


def group_qubit_wise(observables: list[PauliString]) -> list[MeasurementGroup]:
    """Greedy first-fit QWC grouping (deterministic given input order).

    Identity-only strings join the first group (they cost nothing).  The
    number of returned groups is the number of distinct measurement
    settings the direct estimator needs.
    """
    if not observables:
        return []
    bins: list[list[PauliString]] = []
    for obs in observables:
        for group in bins:
            if all(qubit_wise_commute(obs, member) for member in group):
                group.append(obs)
                break
        else:
            bins.append([obs])
    return [
        MeasurementGroup(members=tuple(group), basis=_merge_basis(group))
        for group in bins
    ]


def measure_group(
    state: np.ndarray,
    group: MeasurementGroup,
    shots: int,
    seed: int | np.random.Generator | None = None,
) -> dict[str, float]:
    """Estimate every member of ``group`` from ONE set of ``shots`` samples.

    The state is rotated into the group's shared eigenbasis once; each
    member's estimate is the mean of its support-parity eigenvalues over
    the same samples.  ``shots == 0`` returns exact expectations.
    """
    from repro.quantum.gates import H, SDG
    from repro.quantum.observables import expectation
    from repro.quantum.statevector import apply_matrix_batch

    state = np.asarray(state, dtype=np.complex128).ravel()
    n = group.basis.num_qubits
    if state.size != 2**n:
        raise ValueError("state dimension mismatch")
    if shots < 0:
        raise ValueError("shots must be >= 0")

    if shots == 0:
        return {m.string: float(expectation(state, m)) for m in group.members}

    rotated = state[None, :]
    for qubit, letter in enumerate(group.basis.string):
        if letter == "X":
            rotated = apply_matrix_batch(rotated, H, (qubit,))
        elif letter == "Y":
            rotated = apply_matrix_batch(rotated, H @ SDG, (qubit,))
    probs = np.abs(rotated[0]) ** 2
    probs = probs / probs.sum()
    rng = as_rng(seed)
    counts = rng.multinomial(shots, probs)

    indices = np.arange(2**n)
    estimates: dict[str, float] = {}
    for member in group.members:
        if member.is_identity:
            estimates[member.string] = 1.0
            continue
        parity = np.zeros_like(indices)
        for q in member.support:
            parity ^= (indices >> (n - 1 - q)) & 1
        signs = 1.0 - 2.0 * parity
        estimates[member.string] = float(np.dot(counts, signs)) / shots
    return estimates
