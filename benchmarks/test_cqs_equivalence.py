"""E10 -- Sec. III.E: CQS linear solver and the Hamiltonian-loss identity.

Regenerates the section's chain of equalities (Eqs. 8-13) on random
Pauli-sparse systems: L_Ham(CQS) = sum_j alpha_j tr(O_j rho_b) = L_MAE (with
ground truth 0) <= L_RMSE, with m = m_CQS^2-style term counting; and shows
the Ansatz-tree residual decreasing to the exact solution.
"""

from __future__ import annotations

import numpy as np

from repro.core.cqs import decompose_hamiltonian_loss, solve_cqs
from repro.data.linear_system import random_linear_system
from repro.ml.losses import mae_loss, rmse_loss


def run_cqs():
    records = []
    for seed in (0, 1, 2):
        a, b, x_true = random_linear_system(3, 3, seed=seed)
        series = []
        for max_terms in (1, 2, 4, 8, 16, 32):
            result = solve_cqs(a, b, max_terms=max_terms)
            series.append((max_terms, result.residual_norm, result.hamiltonian_loss))
        result = solve_cqs(a, b, max_terms=8)
        alphas, observables = decompose_hamiltonian_loss(a, b, result)
        rho_b = np.outer(b, b.conj())
        traces = np.array([np.trace(o @ rho_b).real for o in observables])
        combo = float(alphas @ traces)
        records.append(
            {
                "seed": seed,
                "series": series,
                "l_ham": result.hamiltonian_loss,
                "combo": combo,
                "l_mae": mae_loss([0.0], [combo]),
                "l_rmse": rmse_loss([0.0], [combo]),
                "num_terms": len(alphas),
                "m_cqs": result.num_terms,
            }
        )
    return records


def test_cqs_equivalence(benchmark):
    records = benchmark.pedantic(run_cqs, rounds=1, iterations=1)

    print("\n=== E10: CQS residual vs Ansatz-tree size; Sec. III.E identity ===")
    for rec in records:
        path = "  ".join(f"m={m}:|r|={r:.2e}" for m, r, _ in rec["series"])
        print(f"seed {rec['seed']}: {path}")
        print(
            f"  L_Ham={rec['l_ham']:.6e}  sum alpha tr(O rho_b)={rec['combo']:.6e}  "
            f"L_MAE={rec['l_mae']:.6e}  L_RMSE={rec['l_rmse']:.6e}  "
            f"terms={rec['num_terms']} (m_CQS={rec['m_cqs']})"
        )

    for rec in records:
        # Residual decreases along the tree and reaches ~0 at full span.
        residuals = [r for _, r, _ in rec["series"]]
        assert all(b <= a + 1e-9 for a, b in zip(residuals, residuals[1:], strict=False))
        assert residuals[-1] < 1e-6
        # Eqs. 10-13.
        assert abs(rec["l_ham"] - rec["combo"]) < 1e-9
        assert abs(rec["l_mae"] - rec["l_ham"]) < 1e-9
        assert rec["l_mae"] <= rec["l_rmse"] + 1e-12
        # m = m_CQS(m_CQS + 1)/2 distinct Hermitian terms (the symmetrised
        # version of the paper's m_CQS^2 counting).
        assert rec["num_terms"] == rec["m_cqs"] * (rec["m_cqs"] + 1) // 2
