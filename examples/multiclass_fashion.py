"""Ten-class classification with a post-variational network (paper Table IV).

Demonstrates the multiclass story of paper Sec. VII.B: the post-variational
model extends to many classes by simply widening the classical linear map
(softmax head), while the variational baseline needs bespoke readout
schemes (partition readout here) and struggles to train.

Run:  python examples/multiclass_fashion.py   (takes a couple of minutes)
"""

import numpy as np

from repro.core import HybridStrategy, PostVariationalClassifier, VariationalClassifier
from repro.data import CLASS_NAMES, multiclass_fashion
from repro.ml import SoftmaxRegression, accuracy, confusion_matrix


def main() -> None:
    split = multiclass_fashion(train_total=200, test_total=100)
    flat_train = split.x_train.reshape(split.num_train, -1) / (2 * np.pi)
    flat_test = split.x_test.reshape(split.num_test, -1) / (2 * np.pi)

    logistic = SoftmaxRegression(num_classes=10).fit(flat_train, split.y_train)
    print(
        f"softmax logistic: train {accuracy(split.y_train, logistic.predict(flat_train)):.3f} "
        f"test {accuracy(split.y_test, logistic.predict(flat_test)):.3f}"
    )

    variational = VariationalClassifier(num_classes=10, epochs=10)
    variational.fit(split.x_train, split.y_train)
    print(
        f"variational (partition readout): "
        f"train {variational.score(split.x_train, split.y_train):.3f} "
        f"test {variational.score(split.x_test, split.y_test):.3f}"
    )

    model = PostVariationalClassifier(
        strategy=HybridStrategy(order=1, locality=2), num_classes=10
    )
    model.fit(split.x_train, split.y_train)
    print(
        f"post-variational (1-order + 2-local, m={model.strategy.num_features}): "
        f"train {model.score(split.x_train, split.y_train):.3f} "
        f"test {model.score(split.x_test, split.y_test):.3f}"
    )

    print("\nconfusion matrix (test):")
    cm = confusion_matrix(split.y_test, model.predict(split.x_test), 10)
    short = [name[:6] for name in CLASS_NAMES]
    print(" " * 8 + " ".join(f"{s:>6}" for s in short))
    for name, row in zip(short, cm, strict=True):
        print(f"{name:>8} " + " ".join(f"{v:>6}" for v in row))


if __name__ == "__main__":
    main()
