"""Image preprocessing exactly as paper Sec. VII.A.

"we first reduce the dimensions of the image to 4x4 ... we instead apply max
pooling over 7x7 patches and rescaling the parameters to a range of
[0, 2pi)".  Max pooling (not PCA) is a deliberate paper choice to keep the
task non-trivial; we follow it to the letter.
"""

from __future__ import annotations

import numpy as np

__all__ = ["max_pool", "rescale_to_angle", "preprocess_images", "flatten_images"]


def max_pool(images: np.ndarray, pool: int) -> np.ndarray:
    """Non-overlapping max pooling over ``pool x pool`` patches.

    ``images`` is (d, H, W) or (H, W); H and W must be divisible by ``pool``.
    """
    arr = np.asarray(images, dtype=float)
    squeeze = arr.ndim == 2
    if squeeze:
        arr = arr[None]
    d, h, w = arr.shape
    if h % pool or w % pool:
        raise ValueError(f"image size {h}x{w} not divisible by pool={pool}")
    pooled = arr.reshape(d, h // pool, pool, w // pool, pool).max(axis=(2, 4))
    return pooled[0] if squeeze else pooled


def rescale_to_angle(images: np.ndarray, max_angle: float = 2 * np.pi) -> np.ndarray:
    """Affinely map values into [0, max_angle) per the encoding circuit.

    Uses the global min/max of the batch (a fixed, data-independent scaling
    would also work; global scaling matches "rescaling the parameters to a
    range of [0, 2pi)" while keeping the transform monotone).  A strictly
    open upper end is enforced by a (1 - 1e-9) factor.
    """
    arr = np.asarray(images, dtype=float)
    lo, hi = arr.min(), arr.max()
    if hi == lo:
        return np.zeros_like(arr)
    return (arr - lo) / (hi - lo) * max_angle * (1.0 - 1e-9)


def preprocess_images(images: np.ndarray, pool: int = 7) -> np.ndarray:
    """Full Sec. VII.A pipeline: pool 28x28 -> 4x4, rescale to [0, 2pi)."""
    return rescale_to_angle(max_pool(images, pool))


def flatten_images(images: np.ndarray) -> np.ndarray:
    """(d, H, W) -> (d, H*W) design matrix for the classical baselines."""
    arr = np.asarray(images, dtype=float)
    if arr.ndim != 3:
        raise ValueError("expected (d, H, W) image batch")
    return arr.reshape(arr.shape[0], -1)
