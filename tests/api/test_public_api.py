"""API-stability smoke: every advertised symbol imports and is usable.

CI runs this as a dedicated job: the ``repro.api`` surface is the
compatibility contract, so a rename or a lazy-import regression must fail
before anything else does.
"""

import importlib
import warnings

import pytest


def test_every_all_symbol_importable():
    api = importlib.import_module("repro.api")
    assert api.__all__, "repro.api must advertise a public surface"
    for name in api.__all__:
        obj = getattr(api, name)
        assert obj is not None, name


def test_dir_covers_all():
    import repro.api as api

    assert set(api.__all__) <= set(dir(api))


def test_star_import_resolves_lazy_symbols():
    namespace: dict = {}
    exec("from repro.api import *", namespace)  # noqa: S102 - the actual contract
    for name in ("ExecutionConfig", "QuantumDevice", "QuantumFeatureMap"):
        assert name in namespace


def test_unknown_attribute_raises():
    import repro.api as api

    with pytest.raises(AttributeError):
        api.NoSuchThing


def test_core_surface_still_exports_entry_points():
    core = importlib.import_module("repro.core")
    for name in core.__all__:
        assert getattr(core, name) is not None, name


def test_importing_api_emits_no_warnings():
    """The stable surface must not tickle its own deprecation shims."""
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        import repro.api
        importlib.reload(repro.api)
    assert not any(issubclass(w.category, DeprecationWarning) for w in caught)
