"""E12 (extension) -- QWC grouping: measurement settings between Prop. 1
and shadows.

The paper's Table II compares per-observable direct measurement against
classical shadows.  Production stacks sit in between: qubit-wise-commuting
grouping reads out whole observable families from shared samples.  This
bench counts measurement settings for the Eq. 18 observable sets and
verifies the shared-sample estimator keeps direct-measurement accuracy.
"""

from __future__ import annotations

import numpy as np

from repro.data.encoding import encode_batch
from repro.quantum.grouping import group_qubit_wise, measure_group
from repro.quantum.observables import expectation, local_pauli_strings
from repro.quantum.sampling import measure_pauli


def run_grouping(split):
    settings = {}
    for locality in (1, 2, 3, 4):
        observables = local_pauli_strings(4, locality)
        groups = group_qubit_wise(observables)
        settings[locality] = (len(observables), len(groups))

    # Accuracy at equal per-setting shots: grouped vs per-observable.
    psi = encode_batch(split.x_train[:1])[0]
    observables = local_pauli_strings(4, 2)
    groups = group_qubit_wise(observables)
    shots = 2000
    grouped_err, naive_err = [], []
    for gi, group in enumerate(groups):
        estimates = measure_group(psi, group, shots=shots, seed=100 + gi)
        for member in group.members:
            exact = expectation(psi, member)
            grouped_err.append(abs(estimates[member.string] - exact))
    for oi, obs in enumerate(observables):
        if obs.is_identity:
            continue
        exact = expectation(psi, obs)
        naive_err.append(abs(measure_pauli(psi, obs, shots, seed=200 + oi) - exact))
    return settings, float(np.mean(grouped_err)), float(np.mean(naive_err))


def test_measurement_grouping(benchmark, small_split):
    settings, grouped_err, naive_err = benchmark.pedantic(
        run_grouping, args=(small_split,), rounds=1, iterations=1
    )

    print("\n=== E12: QWC grouping -- settings vs observables (n=4) ===")
    print(f"{'L':>3} {'observables':>12} {'QWC settings':>13} {'ratio':>7}")
    for locality, (num_obs, num_groups) in settings.items():
        print(f"{locality:>3} {num_obs:>12} {num_groups:>13} {num_obs / num_groups:>7.1f}x")
    print(f"mean abs error at 2000 shots/setting: grouped {grouped_err:.4f}, "
          f"per-observable {naive_err:.4f}")

    # Grouping reduces settings at every locality by a substantial factor.
    ratios = [num_obs / num_groups for num_obs, num_groups in settings.values()]
    assert all(r > 1.5 for r in ratios)
    # Full 4-local basis: 256 observables fit in at most 3^4 = 81 settings.
    assert settings[4][1] <= 81
    # Estimator quality is preserved (same order of error).
    assert grouped_err < 3 * naive_err + 0.02
